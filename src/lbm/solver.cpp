#include "lbm/solver.hpp"

#include <algorithm>
#include <fstream>
#include <cmath>

#include "base/contracts.hpp"
#include "lbm/hemodynamics.hpp"

namespace hemo::lbm {

Solver::Solver(std::shared_ptr<const SparseLattice> lattice,
               SolverOptions options)
    : lattice_(std::move(lattice)), options_(options) {
  HEMO_EXPECTS(lattice_ != nullptr);
  HEMO_EXPECTS(options_.tau > 0.5);  // positive viscosity / linear stability
  HEMO_EXPECTS(options_.outlet_density > 0.0);
  HEMO_EXPECTS(std::abs(options_.inlet_velocity) < 1.0);

  const auto n = static_cast<std::size_t>(lattice_->size());
  node_type_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    node_type_[i] = static_cast<std::uint8_t>(
        lattice_->node_type(static_cast<PointIndex>(i)));

  buf_a_.resize(static_cast<std::size_t>(kQ) * n);
  buf_b_.resize(static_cast<std::size_t>(kQ) * n);
  const auto& u0 = options_.initial_velocity;
  for (int q = 0; q < kQ; ++q) {
    const double feq =
        equilibrium(q, options_.initial_density, u0.x, u0.y, u0.z);
    std::fill_n(buf_a_.begin() + static_cast<std::ptrdiff_t>(q) *
                                     static_cast<std::ptrdiff_t>(n),
                n, feq);
  }
  current_ = &buf_a_;
  next_ = &buf_b_;
}

KernelArgs Solver::args(const std::vector<double>& in,
                        std::vector<double>& out) const {
  KernelArgs a;
  a.f_in = in.data();
  a.f_out = out.data();
  a.adjacency = lattice_->adjacency().data();
  a.node_type = node_type_.data();
  a.n = lattice_->size();
  a.omega = 1.0 / options_.tau;
  a.force_x = options_.body_force.x;
  a.force_y = options_.body_force.y;
  a.force_z = options_.body_force.z;
  a.inlet_velocity = options_.inlet_velocity;
  a.outlet_density = options_.outlet_density;
  return a;
}

void Solver::step() {
  const KernelArgs a = args(*current_, *next_);
  for (std::int64_t i = 0; i < a.n; ++i) stream_collide_point(a, i);
  std::swap(current_, next_);
  ++steps_done_;
}

void Solver::run(int steps) {
  HEMO_EXPECTS(steps >= 0);
  for (int s = 0; s < steps; ++s) step();
}

Moments Solver::moments(PointIndex i) const {
  HEMO_EXPECTS(i >= 0 && i < lattice_->size());
  const auto n = static_cast<std::size_t>(lattice_->size());
  double f[kQ];
  for (int q = 0; q < kQ; ++q)
    f[q] = (*current_)[static_cast<std::size_t>(q) * n +
                       static_cast<std::size_t>(i)];
  return moments_of(f, options_.body_force.x, options_.body_force.y,
                    options_.body_force.z);
}

double Solver::total_mass() const {
  double mass = 0.0;
  for (double v : *current_) mass += v;
  return mass;
}

void Solver::set_inlet_velocity(double velocity) {
  HEMO_EXPECTS(std::abs(velocity) < 1.0);
  options_.inlet_velocity = velocity;
}

std::array<double, 6> Solver::stress(PointIndex i) const {
  HEMO_EXPECTS(i >= 0 && i < lattice_->size());
  // The stress lives in the non-equilibrium part of the *pre-collision*
  // distributions (collision relaxes it away — entirely so at tau = 1),
  // so re-gather the incoming populations of the next step.  The gather
  // never writes f_out, and next_ points at non-const storage even in a
  // const method, so no const_cast is needed.
  const KernelArgs a = args(*current_, *next_);
  double f[kQ];
  gather_pre_collision(a, i, f);
  return deviatoric_stress(f, 1.0 / options_.tau, options_.body_force.x,
                           options_.body_force.y, options_.body_force.z);
}

namespace {
constexpr std::uint64_t kCheckpointMagic = 0x48454D4F464C4F57ull;  // "HEMOFLOW"
}  // namespace

void Solver::save_checkpoint(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  HEMO_EXPECTS(out.good());
  const std::uint64_t magic = kCheckpointMagic;
  const std::int64_t n = lattice_->size();
  const std::int64_t q = kQ;
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&q), sizeof q);
  out.write(reinterpret_cast<const char*>(&steps_done_), sizeof steps_done_);
  out.write(reinterpret_cast<const char*>(current_->data()),
            static_cast<std::streamsize>(current_->size() * sizeof(double)));
  HEMO_ENSURES(out.good());
}

void Solver::restore_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HEMO_EXPECTS(in.good());
  std::uint64_t magic = 0;
  std::int64_t n = 0, q = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&q), sizeof q);
  HEMO_EXPECTS(magic == kCheckpointMagic);
  HEMO_EXPECTS(n == lattice_->size());  // checkpoint matches this lattice
  HEMO_EXPECTS(q == kQ);
  in.read(reinterpret_cast<char*>(&steps_done_), sizeof steps_done_);
  in.read(reinterpret_cast<char*>(current_->data()),
          static_cast<std::streamsize>(current_->size() * sizeof(double)));
  HEMO_ENSURES(in.good());
}

double Solver::max_speed() const {
  double best = 0.0;
  for (PointIndex i = 0; i < lattice_->size(); ++i) {
    const Moments m = moments(i);
    best = std::max(best,
                    std::sqrt(m.ux * m.ux + m.uy * m.uy + m.uz * m.uz));
  }
  return best;
}

}  // namespace hemo::lbm
