#include "lbm/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "base/contracts.hpp"
#include "lbm/aa_layout.hpp"
#include "lbm/hemodynamics.hpp"

namespace hemo::lbm {

Solver::Solver(std::shared_ptr<const SparseLattice> lattice,
               SolverOptions options)
    : lattice_(std::move(lattice)), options_(options) {
  HEMO_EXPECTS(lattice_ != nullptr);
  HEMO_EXPECTS(options_.tau > 0.5);  // positive viscosity / linear stability
  HEMO_EXPECTS(options_.outlet_density > 0.0);
  HEMO_EXPECTS(std::abs(options_.inlet_velocity) < 1.0);

  const auto n = static_cast<std::size_t>(lattice_->size());
  node_type_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    node_type_[i] = static_cast<std::uint8_t>(
        lattice_->node_type(static_cast<PointIndex>(i)));

  buf_a_.resize(static_cast<std::size_t>(kQ) * n);
  buf_b_.resize(static_cast<std::size_t>(kQ) * n);
  if (options_.propagation == Propagation::kAAInPlace) {
    current_ = &buf_b_;  // canonical snapshot cache
    next_ = &buf_a_;     // the live in-place array
  } else {
    current_ = &buf_a_;
    next_ = &buf_b_;
  }

  const auto& u0 = options_.initial_velocity;
  for (int q = 0; q < kQ; ++q) {
    const double feq =
        equilibrium(q, options_.initial_density, u0.x, u0.y, u0.z);
    std::fill_n(current_->begin() + static_cast<std::ptrdiff_t>(q) *
                                        static_cast<std::ptrdiff_t>(n),
                n, feq);
  }
  if (options_.propagation == Propagation::kAAInPlace) {
    // Lay the equilibrium snapshot out as the even-parity AA array: slot
    // (q, i) holds the streamed-in pre-collision population, exactly what
    // one pull step starting from the same snapshot would gather.
    aa_decanonicalize(lattice_->adjacency().data(), lattice_->size(),
                      steps_done_, current_->data(), buf_a_.data());
    aa_canonical_fresh_ = true;
  }
}

KernelArgs Solver::args(const std::vector<double>& in,
                        std::vector<double>& out) const {
  KernelArgs a;
  a.f_in = in.data();
  a.f_out = out.data();
  a.adjacency = lattice_->adjacency().data();
  a.node_type = node_type_.data();
  a.n = lattice_->size();
  a.omega = 1.0 / options_.tau;
  a.force_x = options_.body_force.x;
  a.force_y = options_.body_force.y;
  a.force_z = options_.body_force.z;
  a.inlet_velocity = options_.inlet_velocity;
  a.outlet_density = options_.outlet_density;
  return a;
}

void Solver::step() {
  if (options_.propagation == Propagation::kAAInPlace) {
    KernelArgs a = args(buf_b_, buf_a_);
    a.f = buf_a_.data();
    if (steps_done_ % 2 == 0) {
      for (std::int64_t i = 0; i < a.n; ++i) stream_collide_point_aa_even(a, i);
    } else {
      for (std::int64_t i = 0; i < a.n; ++i) stream_collide_point_aa_odd(a, i);
    }
    ++steps_done_;
    aa_canonical_fresh_ = false;
    return;
  }
  const KernelArgs a = args(*current_, *next_);
  for (std::int64_t i = 0; i < a.n; ++i) stream_collide_point(a, i);
  std::swap(current_, next_);
  ++steps_done_;
}

void Solver::run(int steps) {
  HEMO_EXPECTS(steps >= 0);
  for (int s = 0; s < steps; ++s) step();
}

const std::vector<double>& Solver::distributions() const {
  if (options_.propagation == Propagation::kAAInPlace &&
      !aa_canonical_fresh_) {
    aa_canonicalize(lattice_->adjacency().data(), lattice_->size(),
                    steps_done_, buf_a_.data(), current_->data());
    aa_canonical_fresh_ = true;
  }
  return *current_;
}

void Solver::corrupt_live_bit(PointIndex i, int q, int bit) {
  HEMO_EXPECTS(i >= 0 && i < lattice_->size());
  HEMO_EXPECTS(q >= 0 && q < kQ);
  HEMO_EXPECTS(bit >= 0 && bit < 64);
  std::vector<double>& live =
      options_.propagation == Propagation::kAAInPlace ? buf_a_ : *current_;
  const int row = live_slot_q(live_layout(), q);
  double& v = live[static_cast<std::size_t>(row) *
                       static_cast<std::size_t>(lattice_->size()) +
                   static_cast<std::size_t>(i)];
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  bits ^= 1ull << bit;
  std::memcpy(&v, &bits, sizeof bits);
  if (options_.propagation == Propagation::kAAInPlace)
    aa_canonical_fresh_ = false;
}

Moments Solver::moments(PointIndex i) const {
  HEMO_EXPECTS(i >= 0 && i < lattice_->size());
  const auto n = static_cast<std::size_t>(lattice_->size());
  const std::vector<double>& f_all = distributions();
  double f[kQ];
  for (int q = 0; q < kQ; ++q)
    f[q] = f_all[static_cast<std::size_t>(q) * n + static_cast<std::size_t>(i)];
  return moments_of(f, options_.body_force.x, options_.body_force.y,
                    options_.body_force.z);
}

double Solver::total_mass() const {
  double mass = 0.0;
  for (double v : distributions()) mass += v;
  return mass;
}

void Solver::set_inlet_velocity(double velocity) {
  HEMO_EXPECTS(std::abs(velocity) < 1.0);
  options_.inlet_velocity = velocity;
}

std::array<double, 6> Solver::stress(PointIndex i) const {
  HEMO_EXPECTS(i >= 0 && i < lattice_->size());
  // The stress lives in the non-equilibrium part of the *pre-collision*
  // distributions (collision relaxes it away — entirely so at tau = 1),
  // so re-gather the incoming populations of the next step from the
  // canonical snapshot.  The gather never writes f_out, and next_ points
  // at non-const storage even in a const method, so no const_cast is
  // needed.
  const KernelArgs a = args(distributions(), *next_);
  double f[kQ];
  gather_pre_collision(a, i, f);
  return deviatoric_stress(f, 1.0 / options_.tau, options_.body_force.x,
                           options_.body_force.y, options_.body_force.z);
}

namespace {
constexpr std::uint64_t kCheckpointMagic = 0x48454D4F464C4F57ull;  // "HEMOFLOW"

void read_exact(std::ifstream& in, void* dst, std::size_t bytes,
                const std::string& what) {
  in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes))
    throw CheckpointError("checkpoint: truncated " + what);
}
}  // namespace

void Solver::save_checkpoint(const std::string& path) const {
  const std::vector<double>& canonical = distributions();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good())
      throw CheckpointError("checkpoint: cannot open " + tmp + " for write");
    const std::uint64_t magic = kCheckpointMagic;
    const std::int64_t n = lattice_->size();
    const std::int64_t q = kQ;
    out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
    out.write(reinterpret_cast<const char*>(&n), sizeof n);
    out.write(reinterpret_cast<const char*>(&q), sizeof q);
    out.write(reinterpret_cast<const char*>(&steps_done_), sizeof steps_done_);
    out.write(reinterpret_cast<const char*>(canonical.data()),
              static_cast<std::streamsize>(canonical.size() * sizeof(double)));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      throw CheckpointError("checkpoint: short write to " + tmp);
    }
  }
  // The live file only ever changes by whole-file rename, so a crash at
  // any instant leaves either the previous checkpoint or the new one —
  // never a torn hybrid (same discipline as io::BlobWriter).
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: cannot replace " + path);
  }
}

void Solver::restore_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw CheckpointError("checkpoint: cannot open " + path);
  std::uint64_t magic = 0;
  std::int64_t n = 0, q = 0, steps = 0;
  read_exact(in, &magic, sizeof magic, "header magic");
  if (magic != kCheckpointMagic)
    throw CheckpointError("checkpoint: bad magic in " + path);
  read_exact(in, &n, sizeof n, "header point count");
  read_exact(in, &q, sizeof q, "header direction count");
  if (n != lattice_->size() || q != kQ)
    throw CheckpointError(
        "checkpoint: lattice mismatch (file has n=" + std::to_string(n) +
        ", q=" + std::to_string(q) + "; solver has n=" +
        std::to_string(lattice_->size()) + ", q=" + std::to_string(kQ) + ")");
  read_exact(in, &steps, sizeof steps, "step counter");
  if (steps < 0)
    throw CheckpointError("checkpoint: negative step counter in " + path);

  // Read into a staging buffer first so a payload error leaves the solver
  // state untouched, and reject files with bytes past the exact payload.
  std::vector<double> canonical(current_->size());
  read_exact(in, canonical.data(), canonical.size() * sizeof(double),
             "payload");
  if (in.peek() != std::ifstream::traits_type::eof())
    throw CheckpointError("checkpoint: trailing bytes after payload in " +
                          path);

  *current_ = std::move(canonical);
  steps_done_ = steps;
  if (options_.propagation == Propagation::kAAInPlace) {
    aa_decanonicalize(lattice_->adjacency().data(), lattice_->size(),
                      steps_done_, current_->data(), buf_a_.data());
    aa_canonical_fresh_ = true;
  }
}

double Solver::max_speed() const {
  double best = 0.0;
  for (PointIndex i = 0; i < lattice_->size(); ++i) {
    const Moments m = moments(i);
    best = std::max(best,
                    std::sqrt(m.ux * m.ux + m.uy * m.uy + m.uz * m.uz));
  }
  return best;
}

}  // namespace hemo::lbm
