#pragma once
// Host-side conversions between the AA pattern's single in-place array and
// the canonical distribution snapshot (the post-collision, q-major SoA
// layout the pull scheme double-buffers and every consumer of
// Solver::distributions() expects).
//
// The AA array's meaning depends on the parity of the step counter:
//
//   parity even (initial state, or just after an odd step): slot (q, i)
//   holds the streamed-in PRE-collision population f_q(i) of the upcoming
//   even step.  Relative to the canonical post-collision snapshot P of the
//   last completed step this is
//       A[q][i] = P[q][up]      where up = adjacency[q][i] is fluid
//       A[q][i] = P[opp q][i]   where up is solid (bounce-back; also used
//                               as harmless scratch for Zou-He unknowns,
//                               which the even kernel rebuilds itself)
//
//   parity odd (just after an even step): the even kernel wrote its
//   post-collision result q into the point's opposite slot, so
//       A[opp q][i] = P[q][i]
//
// Both mappings are bijections over the slots the kernels actually read,
// so converting AA -> canonical -> AA (or restoring a canonical checkpoint
// into either pattern at either parity) is bit-exact.  This is what keeps
// checkpoints portable across propagation patterns and parities: the file
// always stores the canonical snapshot, and the solver decanonicalizes on
// restore according to the restored step counter.

#include <cstdint>

#include "base/types.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::lbm {

/// Rebuilds the canonical post-collision snapshot from an AA array.
/// `adjacency` is the pull-neighbor table (kQ * n, q-major),
/// `steps_done` the solver's step counter (its parity selects the
/// mapping above).  `canonical` must hold kQ * n doubles.
inline void aa_canonicalize(const PointIndex* adjacency, std::int64_t n,
                            std::int64_t steps_done, const double* aa,
                            double* canonical) {
  const auto un = static_cast<std::size_t>(n);
  if (steps_done % 2 != 0) {
    for (int q = 0; q < kQ; ++q) {
      const std::size_t qo = static_cast<std::size_t>(opposite(q)) * un;
      const std::size_t qs = static_cast<std::size_t>(q) * un;
      for (std::size_t i = 0; i < un; ++i) canonical[qs + i] = aa[qo + i];
    }
    return;
  }
  for (int q = 0; q < kQ; ++q) {
    const std::size_t qo = static_cast<std::size_t>(opposite(q)) * un;
    const std::size_t qs = static_cast<std::size_t>(q) * un;
    for (std::size_t i = 0; i < un; ++i) {
      // The odd step scattered this point's result q downstream (to the
      // neighbor in the +c_q direction, i.e. the pull-upstream of opp q),
      // or bounced it into the point's own opposite slot at a wall.
      const PointIndex down = adjacency[qo + i];
      canonical[qs + i] = down != kSolidNeighbor
                              ? aa[qs + static_cast<std::size_t>(down)]
                              : aa[qo + i];
    }
  }
}

/// Inverse of aa_canonicalize: lays a canonical snapshot out as the AA
/// array expected at the given step-counter parity.  Also used to build
/// the initial AA state from the equilibrium fill.
inline void aa_decanonicalize(const PointIndex* adjacency, std::int64_t n,
                              std::int64_t steps_done, const double* canonical,
                              double* aa) {
  const auto un = static_cast<std::size_t>(n);
  if (steps_done % 2 != 0) {
    for (int q = 0; q < kQ; ++q) {
      const std::size_t qo = static_cast<std::size_t>(opposite(q)) * un;
      const std::size_t qs = static_cast<std::size_t>(q) * un;
      for (std::size_t i = 0; i < un; ++i) aa[qs + i] = canonical[qo + i];
    }
    return;
  }
  for (int q = 0; q < kQ; ++q) {
    const std::size_t qo = static_cast<std::size_t>(opposite(q)) * un;
    const std::size_t qs = static_cast<std::size_t>(q) * un;
    for (std::size_t i = 0; i < un; ++i) {
      const PointIndex up = adjacency[qs + i];
      aa[qs + i] = up != kSolidNeighbor
                       ? canonical[qs + static_cast<std::size_t>(up)]
                       : canonical[qo + i];
    }
  }
}

}  // namespace hemo::lbm
