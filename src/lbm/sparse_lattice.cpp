#include "lbm/sparse_lattice.hpp"

#include <limits>

#include "base/contracts.hpp"

namespace hemo::lbm {

SparseLattice::SparseLattice(std::vector<Coord> coords,
                             const Periodicity& periodic)
    : coords_(std::move(coords)) {
  HEMO_EXPECTS(!coords_.empty());
  const std::size_t n = coords_.size();

  index_.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, inserted] = index_.emplace(coords_[i], static_cast<PointIndex>(i));
    HEMO_EXPECTS(inserted);  // duplicate fluid point would corrupt streaming
    (void)it;
  }

  Coord lo{std::numeric_limits<std::int32_t>::max(),
           std::numeric_limits<std::int32_t>::max(),
           std::numeric_limits<std::int32_t>::max()};
  Coord hi{std::numeric_limits<std::int32_t>::min(),
           std::numeric_limits<std::int32_t>::min(),
           std::numeric_limits<std::int32_t>::min()};
  for (const Coord& c : coords_) {
    lo.x = std::min(lo.x, c.x);
    lo.y = std::min(lo.y, c.y);
    lo.z = std::min(lo.z, c.z);
    hi.x = std::max(hi.x, c.x);
    hi.y = std::max(hi.y, c.y);
    hi.z = std::max(hi.z, c.z);
  }
  box_ = Box{lo, Coord{hi.x + 1, hi.y + 1, hi.z + 1}};

  auto wrap = [&](Coord c) {
    for (int a = 0; a < 3; ++a) {
      if (!periodic.axis[a]) continue;
      const std::int32_t period = periodic.period[a];
      HEMO_EXPECTS(period > 0);
      std::int32_t* v = (a == 0) ? &c.x : (a == 1) ? &c.y : &c.z;
      *v = ((*v % period) + period) % period;
    }
    return c;
  };

  adjacency_.assign(static_cast<std::size_t>(kQ) * n, kSolidNeighbor);
  for (std::size_t i = 0; i < n; ++i) {
    for (int q = 0; q < kQ; ++q) {
      // Pull scheme: direction q of point i streams from the site at
      // coords[i] - c_q.
      const Coord up = wrap(coords_[i] - velocity(q));
      auto it = index_.find(up);
      if (it != index_.end())
        adjacency_[static_cast<std::size_t>(q) * n + i] = it->second;
    }
  }

  types_.assign(n, NodeType::kBulk);
}

PointIndex SparseLattice::find(const Coord& c) const {
  auto it = index_.find(c);
  return it == index_.end() ? kSolidNeighbor : it->second;
}

std::int64_t SparseLattice::wall_link_count() const {
  std::int64_t count = 0;
  for (PointIndex a : adjacency_)
    if (a == kSolidNeighbor) ++count;
  return count;
}

}  // namespace hemo::lbm
