#pragma once
// Single-domain reference solver: drives the fused stream-collide kernel on
// the host over a SparseLattice.  This is the physics ground truth that the
// hal-dialect solvers (hemo::harvey) and the proxy app are verified against.

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hpp"
#include "lbm/kernels.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::lbm {

struct SolverOptions {
  double tau = 1.0;               // BGK relaxation time (omega = 1/tau)
  Vec3 body_force{};              // uniform Guo body force
  double inlet_velocity = 0.0;    // u_z at kVelocityInlet points
  double outlet_density = 1.0;    // rho at kPressureOutlet points
  double initial_density = 1.0;
  Vec3 initial_velocity{};
};

/// Kinematic viscosity implied by a BGK relaxation time.
constexpr double viscosity_of_tau(double tau) { return kCs2 * (tau - 0.5); }

class Solver {
 public:
  Solver(std::shared_ptr<const SparseLattice> lattice, SolverOptions options);

  void step();
  void run(int steps);

  std::int64_t step_count() const { return steps_done_; }
  PointIndex size() const { return lattice_->size(); }
  const SparseLattice& lattice() const { return *lattice_; }
  const SolverOptions& options() const { return options_; }

  /// Post-collision distributions of the current step (q-major SoA).
  const std::vector<double>& distributions() const { return *current_; }
  std::vector<double>& mutable_distributions() { return *current_; }

  Moments moments(PointIndex i) const;
  double total_mass() const;

  /// Maximum |u| over all points; used for stability checks.
  double max_speed() const;

  /// Updates the prescribed inlet velocity for subsequent steps; drives
  /// pulsatile inflow when called per step with a waveform value.
  void set_inlet_velocity(double velocity);

  /// Deviatoric stress tensor at one point (see lbm/hemodynamics.hpp).
  std::array<double, 6> stress(PointIndex i) const;

  /// Binary checkpoint of the full state (distributions + step counter);
  /// restore is bit-exact, so a restarted campaign continues identically.
  void save_checkpoint(const std::string& path) const;
  void restore_checkpoint(const std::string& path);

 private:
  KernelArgs args(const std::vector<double>& in, std::vector<double>& out) const;

  std::shared_ptr<const SparseLattice> lattice_;
  SolverOptions options_;
  std::vector<std::uint8_t> node_type_;
  std::vector<double> buf_a_, buf_b_;
  std::vector<double>* current_;
  std::vector<double>* next_;
  std::int64_t steps_done_ = 0;
};

}  // namespace hemo::lbm
