#pragma once
// Single-domain reference solver: drives the fused stream-collide kernel on
// the host over a SparseLattice.  This is the physics ground truth that the
// hal-dialect solvers (hemo::harvey) and the proxy app are verified against.
//
// Two propagation patterns are supported (lbm/propagation.hpp): the
// double-buffered pull-SoA scheme and the in-place AA scheme.  Both produce
// bit-identical physics; every observer (distributions(), moments, probes,
// checkpoints) reports the same canonical post-collision snapshot either
// way, so callers never see the AA array's parity-dependent layout.

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/types.hpp"
#include "lbm/kernels.hpp"
#include "lbm/propagation.hpp"
#include "lbm/sparse_lattice.hpp"
#include "lbm/tile_probe.hpp"

namespace hemo::lbm {

struct SolverOptions {
  double tau = 1.0;               // BGK relaxation time (omega = 1/tau)
  Vec3 body_force{};              // uniform Guo body force
  double inlet_velocity = 0.0;    // u_z at kVelocityInlet points
  double outlet_density = 1.0;    // rho at kPressureOutlet points
  double initial_density = 1.0;
  Vec3 initial_velocity{};
  Propagation propagation = Propagation::kPullSoA;
};

/// Kinematic viscosity implied by a BGK relaxation time.
constexpr double viscosity_of_tau(double tau) { return kCs2 * (tau - 0.5); }

/// A checkpoint file that cannot be opened, fails structural validation
/// (magic, lattice shape, payload size, trailing bytes) or hits an I/O
/// error.  Restore never aborts the process on bad input: campaigns catch
/// this and fall back to a cold start.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Solver {
 public:
  Solver(std::shared_ptr<const SparseLattice> lattice, SolverOptions options);

  void step();
  void run(int steps);

  std::int64_t step_count() const { return steps_done_; }
  PointIndex size() const { return lattice_->size(); }
  const SparseLattice& lattice() const { return *lattice_; }
  const SolverOptions& options() const { return options_; }
  Propagation propagation() const { return options_.propagation; }

  /// Post-collision distributions of the current step in the canonical
  /// q-major SoA layout, whichever propagation pattern is running (the AA
  /// array is canonicalized lazily and cached until the next step).
  const std::vector<double>& distributions() const;

  /// The LIVE distribution array — the exact storage the next kernel step
  /// will read — and its current layout.  Pull: the post-collision SoA
  /// buffer (kCanonical).  AA: the single in-place array at whichever step
  /// parity it is in.  This is what SDC probes must digest and what the
  /// live numerical-health scan must read: the canonicalize conversion
  /// behind distributions() does not read every AA slot, so a corruption
  /// probe over the canonical snapshot can be blind to a slot the next
  /// kernel step consumes.
  const double* live_state() const {
    return options_.propagation == Propagation::kAAInPlace ? buf_a_.data()
                                                           : current_->data();
  }
  LiveLayout live_layout() const {
    return live_layout_of(options_.propagation, steps_done_);
  }

  /// Tile digests of the live array (see lbm/tile_probe.hpp).
  std::vector<TileDigest> tile_digests(std::int64_t tile_points) const {
    return digest_tiles(live_state(), lattice_->size(), lattice_->size(),
                        tile_points, live_layout());
  }

  /// Chaos hook: flips one bit of direction q of point i *in the live
  /// array*, through the live-layout slot mapping — the in-memory SDC the
  /// sentinel exists to catch.  Invalidates the cached canonical snapshot
  /// so observers see the corrupted state too.
  void corrupt_live_bit(PointIndex i, int q, int bit);

  Moments moments(PointIndex i) const;
  double total_mass() const;

  /// Maximum |u| over all points; used for stability checks.
  double max_speed() const;

  /// Updates the prescribed inlet velocity for subsequent steps; drives
  /// pulsatile inflow when called per step with a waveform value.
  void set_inlet_velocity(double velocity);

  /// Deviatoric stress tensor at one point (see lbm/hemodynamics.hpp).
  std::array<double, 6> stress(PointIndex i) const;

  /// Binary checkpoint of the full state (canonical distributions + step
  /// counter), written atomically (.tmp + rename) so a crash mid-write
  /// never tears the live file.  The stored snapshot is always canonical,
  /// so checkpoints are portable across propagation patterns and AA step
  /// parities; restore is bit-exact and throws CheckpointError (instead of
  /// aborting) on malformed files.
  void save_checkpoint(const std::string& path) const;
  void restore_checkpoint(const std::string& path);

 private:
  KernelArgs args(const std::vector<double>& in, std::vector<double>& out) const;

  std::shared_ptr<const SparseLattice> lattice_;
  SolverOptions options_;
  std::vector<std::uint8_t> node_type_;
  // Pull: buf_a_/buf_b_ are the double buffers and current_/next_ swap
  // between them.  AA: buf_a_ is the single in-place array, buf_b_ caches
  // the canonical snapshot (current_ always points at the cache).
  std::vector<double> buf_a_, buf_b_;
  std::vector<double>* current_;
  std::vector<double>* next_;
  std::int64_t steps_done_ = 0;
  mutable bool aa_canonical_fresh_ = true;
};

}  // namespace hemo::lbm
