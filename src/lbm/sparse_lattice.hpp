#pragma once
// Sparse (indirect-addressing) lattice representation, following the
// HARVEY design for complex vascular geometries: only fluid points are
// stored, each carrying a 19-entry upstream-neighbor adjacency list used
// by the pull-scheme streaming step.  Missing neighbors encode the
// bounce-back wall condition; inlet/outlet faces are marked per point.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hpp"
#include "lbm/d3q19.hpp"

namespace hemo::lbm {

/// Per-point boundary classification.  Walls are *not* a node type:
/// in the sparse representation a wall is the absence of a neighbor.
enum class NodeType : std::uint8_t {
  kBulk = 0,
  kVelocityInlet = 1,     // Zou-He velocity boundary on a z-min face (+z inflow)
  kPressureOutlet = 2,    // Zou-He pressure boundary on a z-max face
  kPressureOutletLow = 3, // Zou-He pressure boundary on a z-min face (-z outflow)
};

/// Which axes wrap around periodically, and with what period.
struct Periodicity {
  bool axis[3] = {false, false, false};
  std::int32_t period[3] = {0, 0, 0};
};

class SparseLattice {
 public:
  /// Builds the lattice from an arbitrary set of fluid-point coordinates.
  /// Adjacency is computed with pull-scheme semantics: neighbor q of point
  /// i is the point at coords[i] - c_q, or kSolidNeighbor if that site is
  /// not fluid (bounce-back).
  SparseLattice(std::vector<Coord> coords, const Periodicity& periodic = {});

  PointIndex size() const { return static_cast<PointIndex>(coords_.size()); }
  const std::vector<Coord>& coords() const { return coords_; }
  const Coord& coord(PointIndex i) const { return coords_[static_cast<std::size_t>(i)]; }

  /// Upstream neighbor of point i in direction q (SoA layout: q major).
  PointIndex neighbor(int q, PointIndex i) const {
    return adjacency_[static_cast<std::size_t>(q) * coords_.size() +
                      static_cast<std::size_t>(i)];
  }
  const std::vector<PointIndex>& adjacency() const { return adjacency_; }

  NodeType node_type(PointIndex i) const {
    return types_[static_cast<std::size_t>(i)];
  }
  const std::vector<NodeType>& node_types() const { return types_; }
  void set_node_type(PointIndex i, NodeType t) {
    types_[static_cast<std::size_t>(i)] = t;
  }

  /// Index of the fluid point at coordinate c, or kSolidNeighbor.
  PointIndex find(const Coord& c) const;

  /// Tight bounding box of all fluid points (hi exclusive).
  Box bounding_box() const { return box_; }

  /// Number of lattice links (i, q) whose upstream site is solid, i.e.
  /// the count of bounce-back links.  Useful for surface statistics.
  std::int64_t wall_link_count() const;

 private:
  std::vector<Coord> coords_;
  std::vector<PointIndex> adjacency_;  // kQ * size, q-major
  std::vector<NodeType> types_;
  std::unordered_map<Coord, PointIndex, CoordHash> index_;
  Box box_{};
};

}  // namespace hemo::lbm
