#pragma once
// Propagation-pattern descriptor shared by the kernel layer, the solvers
// and the Section 6 performance model.  Two patterns exist:
//
//   kPullSoA    — double-buffered pull streaming: every step reads one
//                 full distribution array and writes a second one, so the
//                 hot loop makes two array passes (2 * 19 * 8 B/point).
//   kAAInPlace  — the AA (Bailey) two-step pattern: a single distribution
//                 array updated in place.  Even steps are purely local
//                 (read straight slots, write opposite slots); odd steps
//                 gather from the neighbors' opposite slots and scatter to
//                 the neighbors' straight slots.  One array pass per step
//                 (19 * 8 B/point) — the traffic halving the ROADMAP's
//                 hot-loop item targets.
//
// The byte derivation lives here (not hardcoded in perf::ModelParams or
// the hemo-flux rules) so predicted runtimes, campaign re-pricing and the
// static traffic audit all track the pattern a kernel actually uses.

#include "lbm/d3q19.hpp"

namespace hemo::lbm {

enum class Propagation {
  kPullSoA,
  kAAInPlace,
};

/// Full distribution-array passes the hot loop makes per iteration.
constexpr double propagation_passes(Propagation pattern) {
  return pattern == Propagation::kPullSoA ? 2.0 : 1.0;
}

/// Distribution bytes the Section 6 model charges per fluid point per
/// iteration (Eq. 1's n_bytes per point): one 8-byte double for each of
/// the kQ populations, once per array pass.
constexpr double propagation_bytes_per_point(Propagation pattern) {
  return propagation_passes(pattern) * static_cast<double>(kQ) *
         static_cast<double>(sizeof(double));
}

constexpr const char* propagation_name(Propagation pattern) {
  return pattern == Propagation::kPullSoA ? "pull-soa" : "aa-in-place";
}

}  // namespace hemo::lbm
