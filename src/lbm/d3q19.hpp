#pragma once
// D3Q19 lattice descriptor: the velocity set, quadrature weights and
// opposite-direction mapping used throughout HemoFlow.  All data is
// constexpr so kernels can fold it at compile time.
//
// Ordering convention: rest population first, then the six axis
// directions in +/- pairs, then the twelve planar diagonals in +/-
// pairs.  opposite(q) is therefore q^1 adjusted for the rest state.

#include <array>
#include <cstdint>

#include "base/types.hpp"

namespace hemo::lbm {

inline constexpr int kQ = 19;

/// Lattice velocities c_q (row q = direction q).
inline constexpr std::array<std::array<std::int8_t, 3>, kQ> kVelocities = {{
    {0, 0, 0},                                                    // 0 rest
    {1, 0, 0},  {-1, 0, 0},                                       // 1, 2
    {0, 1, 0},  {0, -1, 0},                                       // 3, 4
    {0, 0, 1},  {0, 0, -1},                                       // 5, 6
    {1, 1, 0},  {-1, -1, 0},                                      // 7, 8
    {1, -1, 0}, {-1, 1, 0},                                       // 9, 10
    {1, 0, 1},  {-1, 0, -1},                                      // 11, 12
    {1, 0, -1}, {-1, 0, 1},                                       // 13, 14
    {0, 1, 1},  {0, -1, -1},                                      // 15, 16
    {0, 1, -1}, {0, -1, 1},                                       // 17, 18
}};

/// Quadrature weights w_q.
inline constexpr std::array<double, kQ> kWeights = {
    1.0 / 3.0,
    1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0};

/// Index of the direction with velocity -c_q.
constexpr int opposite(int q) {
  if (q == 0) return 0;
  return (q % 2 == 1) ? q + 1 : q - 1;
}

/// Lattice speed of sound squared (c_s^2 = 1/3 in lattice units).
inline constexpr double kCs2 = 1.0 / 3.0;

constexpr Coord velocity(int q) {
  return Coord{kVelocities[q][0], kVelocities[q][1], kVelocities[q][2]};
}

/// Component a (0..2) of velocity q.
constexpr int c(int q, int a) { return kVelocities[q][a]; }

/// BGK second-order equilibrium distribution for direction q.
constexpr double equilibrium(int q, double rho, double ux, double uy,
                             double uz) {
  const double cu = c(q, 0) * ux + c(q, 1) * uy + c(q, 2) * uz;
  const double u2 = ux * ux + uy * uy + uz * uz;
  return kWeights[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * u2);
}

}  // namespace hemo::lbm
