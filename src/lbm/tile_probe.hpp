#pragma once
// Tile-granular probes over live distribution arrays, the measurement
// layer of the SDC sentinel (hemo::resilience::Sentinel).  A tile is a
// block of consecutive point indices; its digest folds every distribution
// slot of those points into a cheap FNV-1a hash of the raw bit patterns
// plus the physical invariants (tile mass and momentum) the hash alone
// cannot interpret.  Two digests of the same state are bitwise equal, so
// a single flipped bit anywhere in a tile's slots changes the digest with
// certainty — unlike a floating-point norm, which can lose a low-mantissa
// flip to rounding.
//
// The probes read the LIVE array of whichever propagation pattern is
// running, not the canonical observer snapshot: the canonicalize
// conversion does not read every AA slot (wall-adjacent straight slots
// are scratch), so a probe over the converted snapshot would be blind to
// corruption in exactly the slots a later kernel step may consume.
// LiveLayout names the three layouts a live array can be in; the slot
// mapping below makes the per-point direction values well-defined in all
// of them (see lbm/aa_layout.hpp for the parity algebra).

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "base/types.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/propagation.hpp"

namespace hemo::lbm {

/// What a live distribution array currently holds.
///   kCanonical     pull-SoA double buffer or a canonical snapshot:
///                  slot (q, i) is the post-collision f_q(i).
///   kAAEvenParity  AA array before an even step: slot (q, i) is the
///                  streamed-in pre-collision f_q(i).
///   kAAOddParity   AA array before an odd step: slot (opp q, i) is the
///                  post-collision f_q(i) (the even kernel wrote each
///                  result into the opposite slot).
enum class LiveLayout { kCanonical = 0, kAAEvenParity, kAAOddParity };

/// Layout of an AA in-place array given the solver's step counter.
constexpr LiveLayout aa_live_layout(std::int64_t steps_done) {
  return steps_done % 2 == 0 ? LiveLayout::kAAEvenParity
                             : LiveLayout::kAAOddParity;
}

constexpr LiveLayout live_layout_of(Propagation pattern,
                                    std::int64_t steps_done) {
  return pattern == Propagation::kAAInPlace ? aa_live_layout(steps_done)
                                            : LiveLayout::kCanonical;
}

/// The storage slot holding direction q of point i under a layout (as a
/// q-row index; the flat offset is row * stride + i).  Only the odd AA
/// parity permutes rows; the even-parity slot (q, i) already *is* f_q(i),
/// just pre- instead of post-collision.
constexpr int live_slot_q(LiveLayout layout, int q) {
  return layout == LiveLayout::kAAOddParity ? opposite(q) : q;
}

/// Rolling invariants of one tile: an FNV-1a hash over the exact bit
/// patterns of every slot, plus mass and momentum sums.  Equality is
/// bitwise — the sums are byproducts of the same deterministic loop, so
/// they match exactly whenever the state does.
struct TileDigest {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  double mass = 0.0;
  double momentum_x = 0.0;
  double momentum_y = 0.0;
  double momentum_z = 0.0;

  friend bool operator==(const TileDigest& a, const TileDigest& b) {
    return a.hash == b.hash && a.mass == b.mass &&
           a.momentum_x == b.momentum_x && a.momentum_y == b.momentum_y &&
           a.momentum_z == b.momentum_z;
  }
  friend bool operator!=(const TileDigest& a, const TileDigest& b) {
    return !(a == b);
  }
};

/// Number of tiles covering `points` point indices.
constexpr std::int64_t tile_count(std::int64_t points,
                                  std::int64_t tile_points) {
  return tile_points <= 0 ? 0 : (points + tile_points - 1) / tile_points;
}

/// Digest of points [begin, end) of a live SoA array with q-row stride
/// `stride` (the rank-local point count, ghosts included, for the
/// distributed solver; the lattice size for single-domain solvers).
inline TileDigest tile_digest(const double* f, std::int64_t stride,
                              std::int64_t begin, std::int64_t end,
                              LiveLayout layout) {
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  // The digest runs every step over every owned slot, so it has to cost a
  // small fraction of the kernel it guards.  Two structural choices keep
  // it there:
  //   - word-wise FNV-1a (one xor+multiply per slot, not the canonical
  //     byte loop) across FOUR interleaved lanes, because a single hash
  //     chain is serialized on multiply latency;
  //   - one row sum per direction, scaled by the direction's lattice
  //     velocity afterwards, instead of per-point momentum FMAs.
  // Each per-lane round h' = (h ^ bits) * prime is a bijection in `bits`
  // (the prime is odd), and the lane combine below is a bijection in each
  // lane, so a single flipped bit anywhere still changes the digest with
  // certainty.  Lane assignment and combine order are fixed, keeping the
  // digest a pure function of (state, layout, [begin, end)).
  TileDigest d;
  std::uint64_t h0 = d.hash, h1 = d.hash, h2 = d.hash, h3 = d.hash;
  for (int q = 0; q < kQ; ++q) {
    const double* row = f + static_cast<std::size_t>(live_slot_q(layout, q)) *
                                static_cast<std::size_t>(stride);
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::int64_t i = begin;
    for (; i + 4 <= end; i += 4) {
      std::uint64_t b0, b1, b2, b3;
      std::memcpy(&b0, row + i, sizeof b0);
      std::memcpy(&b1, row + i + 1, sizeof b1);
      std::memcpy(&b2, row + i + 2, sizeof b2);
      std::memcpy(&b3, row + i + 3, sizeof b3);
      h0 = (h0 ^ b0) * kFnvPrime;
      h1 = (h1 ^ b1) * kFnvPrime;
      h2 = (h2 ^ b2) * kFnvPrime;
      h3 = (h3 ^ b3) * kFnvPrime;
      s0 += row[i];
      s1 += row[i + 1];
      s2 += row[i + 2];
      s3 += row[i + 3];
    }
    for (; i < end; ++i) {
      std::uint64_t b = 0;
      std::memcpy(&b, row + i, sizeof b);
      h0 = (h0 ^ b) * kFnvPrime;
      s0 += row[i];
    }
    const double row_sum = (s0 + s1) + (s2 + s3);
    d.mass += row_sum;
    d.momentum_x += c(q, 0) * row_sum;
    d.momentum_y += c(q, 1) * row_sum;
    d.momentum_z += c(q, 2) * row_sum;
  }
  d.hash = ((((h0 * kFnvPrime) ^ h1) * kFnvPrime ^ h2) * kFnvPrime ^ h3) *
           kFnvPrime;
  return d;
}

/// Digests of every tile covering points [0, points).  The final tile may
/// be short; an empty range yields an empty table.
inline std::vector<TileDigest> digest_tiles(const double* f,
                                            std::int64_t stride,
                                            std::int64_t points,
                                            std::int64_t tile_points,
                                            LiveLayout layout) {
  std::vector<TileDigest> out;
  const std::int64_t tiles = tile_count(points, tile_points);
  out.reserve(static_cast<std::size_t>(tiles));
  for (std::int64_t t = 0; t < tiles; ++t) {
    const std::int64_t begin = t * tile_points;
    const std::int64_t end = std::min(begin + tile_points, points);
    out.push_back(tile_digest(f, stride, begin, end, layout));
  }
  return out;
}

}  // namespace hemo::lbm
