#pragma once
// Static consistency checker for built SparseLattice / decomposition
// state.  The sparse indirect-addressing lattice is the #1 source of
// silent bugs in bandwidth-bound LBM ports (miniLB; the SYCL portability
// study): a single corrupted adjacency entry turns streaming into an
// out-of-bounds read or a write-write race that no compiler can see.
// The checker validates the invariants the kernels rely on *before*
// time-stepping, both as a library call and from the hemo_lint CLI.
//
// Rule ids (severity):
//   LC001 oob-neighbor            (error)  adjacency index outside [0, n)
//   LC002 rest-link-broken        (error)  neighbor(0, i) != i
//   LC003 duplicate-write-target  (error)  push-scheme write-write race
//   LC004 non-involutive-adjacency(error)  i->j without matching j->i
//   LC005 inlet-unreachable       (warning) fluid cells the inlet cannot feed
//   LC006 owner-out-of-range      (error)  partition owner not in [0, R)
//   LC007 empty-rank              (warning) a rank owns zero points
//   LC008 halo-plan-mismatch      (error)  plan disagrees with the lattice
//                                          (truncated / stale halo map)
//   LC009 exchange-slot-overlap   (error)  halo pack/unpack slots overlap an
//                                          interior update (emitted by
//                                          DistributedSolver::validate)
//   LC010 unauditable-unpack-slot (warning) a (q, slot) pair is unpacked by
//                                          more than one exchange, so CRC
//                                          frame failures cannot be pinned
//                                          on a sender and the final value
//                                          is arrival-order dependent
//   LC011 halo-endpoint-not-in-partition (error) a halo message names a rank
//                                          the partition does not know: id
//                                          outside [0, R), or a rank owning
//                                          zero points (post-shrink, a plan
//                                          still routing traffic through a
//                                          dead rank is stale)

#include <cstdint>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "decomp/partition.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::analysis {

/// Raw view of lattice state, so tests can corrupt a copy of the arrays
/// and re-run the checker without rebuilding a SparseLattice (whose
/// constructor enforces some invariants on its own).
struct LatticeView {
  std::int64_t n = 0;                          // fluid point count
  const PointIndex* adjacency = nullptr;       // q-major, kQ * n entries
  const lbm::NodeType* node_types = nullptr;   // n entries; may be null
};

/// Validates adjacency structure: bounds, rest link, per-direction write
/// injectivity (push-scheme races) and link involution.
std::vector<Diagnostic> check_lattice(const LatticeView& view);

/// Convenience overload over a built lattice; additionally runs the
/// inlet-reachability check when the lattice carries inlet nodes.
std::vector<Diagnostic> check_lattice(const lbm::SparseLattice& lattice);

/// Validates a partition against its lattice: owner range, coverage and
/// per-rank occupancy.
std::vector<Diagnostic> check_partition(const lbm::SparseLattice& lattice,
                                        const decomp::Partition& partition);

/// Validates a halo plan against the ground truth recomputed from the
/// lattice + partition: catches truncated, stale or duplicated halo maps
/// before they become pack/unpack overlaps with interior updates.  Also
/// flags messages whose endpoints the partition does not contain (LC011):
/// rank ids outside [0, n_ranks), or ranks owning zero points — the
/// signature of a plan that was not rebuilt after a shrink re-decomposition
/// retired a rank.
std::vector<Diagnostic> check_halo_plan(const lbm::SparseLattice& lattice,
                                        const decomp::Partition& partition,
                                        const decomp::HaloPlan& plan);

/// Raw view of one directed halo exchange's unpack side, so callers (the
/// distributed solver, tests with hand-built fixtures) can expose their
/// exchange lists without a shared type.
struct ExchangeSlots {
  Rank src = 0;
  Rank dst = 0;
  const int* q = nullptr;                 // count entries
  const std::int64_t* dst_local = nullptr;  // count entries
  std::int64_t count = 0;
};

/// CRC-auditability check (rule LC010): flags (dst, q, slot) targets that
/// are unpacked by more than one exchange.  Such a slot makes per-message
/// CRC frame failures unattributable to a sender (a retransmission cannot
/// name the faulty edge) and leaves the final ghost value dependent on
/// message arrival order.
std::vector<Diagnostic> check_exchange_auditability(
    const std::vector<ExchangeSlots>& exchanges);

}  // namespace hemo::analysis
