#pragma once
// Portability linter: rule-based scanning of backend/corpus sources for
// the hazards that made the paper's ports expensive (Section 7, Tables
// 2-3).  Where mini-DPCT warns while translating, this linter diagnoses
// the *input* (and the checked-in ports) without rewriting anything, so
// CI can diff lint baselines across PRs.
//
// Every rule is line-oriented and text-based by design: the corpus
// dialects share one syntax (plain C++ over the hal shims), which keeps
// the rules symmetric across CUDA/HIP/SYCL/Kokkos spellings.

#include <functional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "port/corpus.hpp"

namespace hemo::analysis {

/// One source file split into lines, as seen by the rule callbacks.
struct LintSource {
  std::string file;                // display name, e.g. "cudax/streams.cpp"
  std::vector<std::string> lines;  // 1-based via lines[line - 1]
};

struct LintRule {
  std::string id;        // "HL001"...
  std::string name;      // kebab-case slug, e.g. "uninitialized-dim3"
  Severity severity = Severity::kWarning;
  std::string summary;   // one-line description for --list-rules
  std::function<void(const LintSource&, std::vector<Diagnostic>&)> check;
};

/// The fixed registry of portability rules, in id order.
const std::vector<LintRule>& lint_rules();

/// Splits a source buffer into a LintSource (handles trailing newline).
LintSource make_lint_source(const std::string& file,
                            const std::string& content);

/// Runs every rule over one source buffer.  Diagnostics come back in
/// (file, line, rule) order.
std::vector<Diagnostic> lint_source(const std::string& file,
                                    const std::string& content);

/// Lints every file of one corpus dialect; file names are prefixed with
/// the dialect directory ("hipx/streams.cpp").
std::vector<Diagnostic> lint_corpus(port::CorpusDialect dialect);

/// Number of distinct rule ids present in a diagnostic set.
int distinct_rule_count(const std::vector<Diagnostic>& ds);

}  // namespace hemo::analysis
