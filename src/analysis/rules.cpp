#include "analysis/rules.hpp"

#include <regex>
#include <set>
#include <sstream>

namespace hemo::analysis {

namespace {

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

/// The line with comments removed: everything after "//" and any
/// single-line "/* ... */" spans.  Rules that diagnose live code scan
/// this; rules about translator breadcrumbs scan the raw line.
std::string code_text(const std::string& line) {
  std::string out = line;
  std::size_t pos = 0;
  while ((pos = out.find("/*")) != std::string::npos) {
    const std::size_t end = out.find("*/", pos + 2);
    if (end == std::string::npos) {
      out.erase(pos);
      break;
    }
    out.erase(pos, end + 2 - pos);
  }
  if ((pos = out.find("//")) != std::string::npos) out.erase(pos);
  return out;
}

void add(std::vector<Diagnostic>& out, const LintRule& rule,
         const LintSource& src, int line, std::string message,
         std::string fixit) {
  out.push_back(Diagnostic{rule.id, rule.severity, src.file, line,
                           std::move(message), std::move(fixit)});
}

// --- HL001: warp-size-32 assumptions -----------------------------------
// A literal 32 baked into sizes or shuffles assumes NVIDIA's warp width;
// AMD wavefronts are 64 lanes wide, so reductions and probe allocations
// sized this way silently under-cover half the wavefront after a port.
const std::regex kWarp32(
    R"((warp|__shfl|__ballot|lane)|((^|[^\w.])32([^\w.]|$)))");

void check_warp32(const LintRule& rule, const LintSource& src,
                  std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    const std::string code = code_text(src.lines[i]);
    if (std::regex_search(code, kWarp32)) {
      add(out, rule, src, static_cast<int>(i) + 1,
          "literal 32 (or warp intrinsic) assumes a 32-lane warp; AMD "
          "wavefronts have 64 lanes",
          "query the sub-group/wavefront size from the device at runtime");
    }
  }
}

// --- HL002: uninitialized dim3 declaration ------------------------------
// "dim3x g;" relies on dim3's default constructor.  DPCT translates the
// type to sycl::range, which has no default constructor, so every such
// declaration becomes a compile error in the SYCL port (the paper's main
// manual-fix category, Section 7).
const std::regex kUninitDim3(R"(^\s*dim3x\s+\w+\s*;)");

void check_uninit_dim3(const LintRule& rule, const LintSource& src,
                       std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    if (std::regex_search(code_text(src.lines[i]), kUninitDim3)) {
      add(out, rule, src, static_cast<int>(i) + 1,
          "uninitialized dim3 declaration; sycl::range has no default "
          "constructor, so DPCT output will not compile",
          "initialize at the declaration, e.g. dim3x grid_dim(1)");
    }
  }
}

// --- HL003: raw-pointer kernel captures ---------------------------------
// Kernel functors that carry raw device pointers defeat the accessor /
// View dependence tracking of SYCL and Kokkos: the runtime cannot order
// kernels or migrate memory for them, which is exactly where the ports'
// silent data races came from.
const std::regex kKernelStruct(R"(struct\s+\w*Kernel\b)");
const std::regex kPointerMember(R"(^\s*(const\s+)?[\w:]+\s*\*\s*\w+;)");

void check_raw_pointer_capture(const LintRule& rule, const LintSource& src,
                               std::vector<Diagnostic>& out) {
  bool in_kernel = false;
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    const std::string code = code_text(src.lines[i]);
    if (std::regex_search(code, kKernelStruct)) {
      in_kernel = true;
      continue;
    }
    if (in_kernel && contains(code, "};")) {
      in_kernel = false;
      continue;
    }
    if (in_kernel && std::regex_search(code, kPointerMember)) {
      add(out, rule, src, static_cast<int>(i) + 1,
          "kernel functor captures a raw device pointer; the runtime "
          "cannot track dependences or migrate the allocation",
          "carry an accessor/View (or mark the USM pointer dependence "
          "explicitly)");
    }
  }
}

// --- HL004: mixed synchronization APIs ----------------------------------
// Mixing device-wide and stream-scoped synchronization in one file makes
// the port ambiguous: translators map the two onto different constructs
// (queue.wait vs. device barrier) whose ordering guarantees differ.
void check_sync_mixing(const LintRule& rule, const LintSource& src,
                       std::vector<Diagnostic>& out) {
  int device_sync_line = 0;
  int stream_sync_line = 0;
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    const std::string code = code_text(src.lines[i]);
    if (device_sync_line == 0 && (contains(code, "DeviceSynchronize(") ||
                                  contains(code, "device_synchronize(")))
      device_sync_line = static_cast<int>(i) + 1;
    if (stream_sync_line == 0 && (contains(code, "StreamSynchronize(") ||
                                  contains(code, "stream_synchronize(")))
      stream_sync_line = static_cast<int>(i) + 1;
  }
  if (device_sync_line != 0 && stream_sync_line != 0) {
    std::ostringstream msg;
    msg << "file mixes device-wide (line " << device_sync_line
        << ") and stream-scoped (line " << stream_sync_line
        << ") synchronization; translated ports inherit different "
           "ordering guarantees for each";
    add(out, rule, src, std::max(device_sync_line, stream_sync_line),
        msg.str(), "standardize on one synchronization granularity");
  }
}

// --- HL005: unchecked device call ---------------------------------------
// A device API call whose status is discarded.  The launch-then-
// GetLastError idiom is recognized and not flagged.
const std::regex kDeviceCall(R"(\b((cudax|hipx)[A-Z]\w*|dpctx::\w+)\s*\()");
const std::set<std::string> kStatusExempt = {
    "cudaxGetErrorString", "hipxGetErrorString",  // returns a string
};

bool is_blank(const std::string& s) {
  return s.find_first_not_of(" \t") == std::string::npos;
}

void check_unchecked_call(const LintRule& rule, const LintSource& src,
                          std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    const std::string code = code_text(src.lines[i]);
    std::smatch m;
    if (!std::regex_search(code, m, kDeviceCall)) continue;
    const std::string callee = m[1].str();
    if (kStatusExempt.contains(callee)) continue;
    // Already consumed: wrapped in a check macro, assigned, or branched on.
    if (contains(code, "CHECK") || contains(code, "EXPECTS") ||
        contains(code, "ENSURES") || contains(code, "ASSERT") ||
        contains(code, "=") || contains(code, "if ") ||
        contains(code, "return ") || contains(code, "#define"))
      continue;
    // Launch idiom: the next statement polls GetLastError under a check.
    std::size_t j = i + 1;
    while (j < src.lines.size() && is_blank(src.lines[j])) ++j;
    if (j < src.lines.size()) {
      const std::string next = code_text(src.lines[j]);
      if (contains(next, "GetLastError") || contains(next, "get_last_error"))
        continue;
    }
    add(out, rule, src, static_cast<int>(i) + 1,
        "status of device call " + callee + " is discarded",
        "wrap the call in the file's CHECK macro");
  }
}

// --- HL006: hard-coded work-group geometry ------------------------------
// Literal block sizes and the "(n + 255) / 256" rounding bake one
// device's preference into every backend; Table 2's kernel-invocation
// warnings (15% of DPCT output) are exactly these sites.
const std::regex kBlockLiteral(
    R"((\b(block|launch)\w*\.\w\s*=\s*\d+)|(\+\s*255\)\s*/\s*256)|(dim3x\(\s*\d+\s*\)))");

void check_hard_coded_geometry(const LintRule& rule, const LintSource& src,
                               std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    if (std::regex_search(code_text(src.lines[i]), kBlockLiteral)) {
      add(out, rule, src, static_cast<int>(i) + 1,
          "hard-coded work-group geometry; the preferred block size "
          "differs across backends and devices",
          "derive the block size from a device query or a tunable");
    }
  }
}

// --- HL007: API with no portable equivalent -----------------------------
// The calls mini-DPCT classifies as unsupported features (Table 2): the
// translated port silently loses this functionality.
const std::regex kNonPortable(
    R"(\b(cudax|hipx)(DeviceSetLimit|FuncSetCacheConfig|StreamAttachMemAsync)\s*\()");

void check_nonportable_api(const LintRule& rule, const LintSource& src,
                           std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    std::smatch m;
    const std::string code = code_text(src.lines[i]);
    if (std::regex_search(code, m, kNonPortable)) {
      add(out, rule, src, static_cast<int>(i) + 1,
          "call has no equivalent in SYCL/Kokkos; automatic translation "
          "drops it (DPCT unsupported-feature category)",
          "guard the call behind a backend #ifdef or remove the "
          "dependence on it");
    }
  }
}

// --- HL008: translation residue -----------------------------------------
// "/* DPCTX1007 removed: ... */" breadcrumbs mark functionality the
// translator dropped; shipping them unresolved means the port never
// reinstated the behavior.
void check_translation_residue(const LintRule& rule, const LintSource& src,
                               std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    if (contains(src.lines[i], " removed: ")) {
      add(out, rule, src, static_cast<int>(i) + 1,
          "unresolved translator breadcrumb: functionality removed by "
          "automatic translation was never reinstated",
          "port the dropped call manually or delete the breadcrumb "
          "after confirming it is unneeded");
    }
  }
}

// --- HL009: null-stream synchronization ---------------------------------
// Synchronizing stream 0 pins the legacy default-stream semantics, which
// HIP and per-thread-default-stream builds do not reproduce.
void check_null_stream_sync(const LintRule& rule, const LintSource& src,
                            std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    const std::string code = code_text(src.lines[i]);
    if (contains(code, "StreamSynchronize(0)") ||
        contains(code, "stream_synchronize(0)")) {
      add(out, rule, src, static_cast<int>(i) + 1,
          "synchronizes the legacy null stream; default-stream semantics "
          "differ across backends",
          "synchronize the explicit stream the work was submitted to");
    }
  }
}

std::vector<LintRule> build_rules() {
  std::vector<LintRule> rules;
  auto reg = [&rules](const char* id, const char* name, Severity sev,
                      const char* summary, auto fn) {
    LintRule r{id, name, sev, summary, nullptr};
    const LintRule meta = r;  // id/severity snapshot for the closure
    r.check = [meta, fn](const LintSource& src,
                         std::vector<Diagnostic>& out) { fn(meta, src, out); };
    rules.push_back(std::move(r));
  };
  reg("HL001", "warp-size-assumption", Severity::kWarning,
      "literal 32 / warp intrinsics assume 32-lane warps", check_warp32);
  reg("HL002", "uninitialized-dim3", Severity::kError,
      "dim3 declared without initializer breaks the SYCL translation",
      check_uninit_dim3);
  reg("HL003", "raw-pointer-kernel-capture", Severity::kWarning,
      "kernel functor members are raw device pointers", check_raw_pointer_capture);
  reg("HL004", "sync-api-mixing", Severity::kWarning,
      "device-wide and stream-scoped synchronization mixed in one file",
      check_sync_mixing);
  reg("HL005", "unchecked-device-call", Severity::kError,
      "device call status discarded (no CHECK macro)", check_unchecked_call);
  reg("HL006", "hard-coded-work-group", Severity::kWarning,
      "literal block sizes / grid rounding bake in one device's geometry",
      check_hard_coded_geometry);
  reg("HL007", "nonportable-api", Severity::kError,
      "CUDA/HIP-only API that automatic translation drops",
      check_nonportable_api);
  reg("HL008", "translation-residue", Severity::kWarning,
      "unresolved 'removed:' breadcrumb from a translator",
      check_translation_residue);
  reg("HL009", "null-stream-sync", Severity::kNote,
      "legacy null-stream synchronization semantics", check_null_stream_sync);
  return rules;
}

}  // namespace

const std::vector<LintRule>& lint_rules() {
  static const std::vector<LintRule> rules = build_rules();
  return rules;
}

LintSource make_lint_source(const std::string& file,
                            const std::string& content) {
  LintSource src;
  src.file = file;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) src.lines.push_back(line);
  return src;
}

std::vector<Diagnostic> lint_source(const std::string& file,
                                    const std::string& content) {
  const LintSource src = make_lint_source(file, content);
  std::vector<Diagnostic> out;
  for (const LintRule& rule : lint_rules()) rule.check(src, out);
  sort_diagnostics(out);
  return out;
}

std::vector<Diagnostic> lint_corpus(port::CorpusDialect dialect) {
  const char* prefix = "";
  switch (dialect) {
    case port::CorpusDialect::kCudax: prefix = "cudax/"; break;
    case port::CorpusDialect::kHipx: prefix = "hipx/"; break;
    case port::CorpusDialect::kSyclx: prefix = "syclx/"; break;
    case port::CorpusDialect::kKokkosx: prefix = "kokkosx/"; break;
  }
  std::vector<Diagnostic> out;
  for (const std::string& name : port::corpus_files()) {
    const std::string content = port::read_corpus_file(dialect, name);
    std::vector<Diagnostic> file_diags = lint_source(prefix + name, content);
    out.insert(out.end(), file_diags.begin(), file_diags.end());
  }
  sort_diagnostics(out);
  return out;
}

int distinct_rule_count(const std::vector<Diagnostic>& ds) {
  std::set<std::string> ids;
  for (const Diagnostic& d : ds) ids.insert(d.rule_id);
  return static_cast<int>(ids.size());
}

}  // namespace hemo::analysis
