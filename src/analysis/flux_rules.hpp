#pragma once
// hemo-flux MT rule family: memory-traffic audits of the extracted access
// IR (flux_ir.hpp) against the Section 6 performance model.  The rules
// exist so the SoA / swap-pattern refactor cannot silently change the
// bytes-per-point the Fig. 5-6 efficiency numbers divide by:
//
//   MT001  hot-loop distribution bytes/point disagree with the model
//          charge for the kernel's propagation pattern: double-buffered
//          pull kernels against perf::ModelParams::bytes_per_point
//          (2*19*8 = 304 B), in-place kernels (AA even/odd, collide-only)
//          against the single-pass half of it (19*8 = 152 B)
//   MT002  non-coalesced AoS distribution access on a hot-loop kernel
//   MT003  redundant distribution re-loads (> 19 loads of one array
//          per point in a hot-loop kernel)
//   MT004  non-fused stream/collide launch sequence: one translation
//          unit drives StreamOnlyKernel and CollideOnlyKernel
//          back-to-back, doubling write-allocate traffic
//   MT005  halo pack/unpack payload disagrees with
//          halo_bytes_per_surface_point (5 crossing values * 8 B)
//   MT006  dialect-vs-dialect divergence in distribution bytes/point
//          for the same kernel name
//
// Clean corpora report zero MT findings; each rule has a seeded-defect
// fixture under tests/analysis/.

#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/flux_extract.hpp"
#include "perf/model.hpp"
#include "port/corpus.hpp"

namespace hemo::analysis {

/// MT001..MT006, in id order.
const std::vector<RuleInfo>& flux_rules();

/// Distributions crossing one subdomain face in D3Q19 (the "5" of the
/// model's halo_bytes_per_surface_point = 5 * 8).
inline constexpr int kHaloValuesPerSurfacePoint = 5;

/// MT001 + MT002 + MT003 + MT005 over one dialect's profiles.
/// `dialect_label` prefixes diagnostics ("cudax") for readable reports.
std::vector<Diagnostic> audit_traffic(const std::string& dialect_label,
                                      const std::vector<KernelProfile>& profiles,
                                      const perf::ModelParams& params);

/// MT004 over launch-site sources: flags any source (other than the
/// kernel definition header) referencing both StreamOnlyKernel and
/// CollideOnlyKernel.
std::vector<Diagnostic> audit_launch_fusion(
    const std::vector<FluxSource>& sources);

/// MT006 across dialects: same kernel name, different distribution
/// bytes/point.  Input pairs are (dialect label, profiles).
std::vector<Diagnostic> audit_dialect_divergence(
    const std::vector<std::pair<std::string, std::vector<KernelProfile>>>&
        dialects);

/// Everything for one checked-in corpus dialect: extracts profiles,
/// audits traffic, and scans its launch sites for MT004.
std::vector<Diagnostic> audit_corpus_traffic(port::CorpusDialect dialect,
                                             const perf::ModelParams& params);

/// Full audit of all four dialect corpora, including MT006.
std::vector<Diagnostic> audit_all_corpora(const perf::ModelParams& params);

/// The machine-readable traffic report ("hemo-flux/1"): per-dialect,
/// per-kernel byte counts and access lists, plus the model constants
/// audited against.  Deterministic: fixed key order, no timestamps.
/// This is the object embedded as the campaign report's traffic_audit
/// block and emitted by `hemo_lint --flux --json`.
std::string traffic_audit_json(const perf::ModelParams& params);

}  // namespace hemo::analysis
