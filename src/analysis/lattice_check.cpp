#include "analysis/lattice_check.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "base/contracts.hpp"
#include "lbm/d3q19.hpp"

namespace hemo::analysis {

namespace {

// Flooded output helps nobody: a corrupted build tends to break thousands
// of links the same way, so each rule reports the first few sites and then
// one summary line.
constexpr int kMaxPerRule = 16;

class RuleEmitter {
 public:
  RuleEmitter(std::vector<Diagnostic>& out, const char* rule_id,
              Severity severity, const char* pseudo_file)
      : out_(out), rule_id_(rule_id), severity_(severity),
        file_(pseudo_file) {}

  ~RuleEmitter() {
    if (suppressed_ > 0) {
      std::ostringstream msg;
      msg << suppressed_ << " additional " << rule_id_
          << " diagnostics suppressed";
      out_.push_back(Diagnostic{rule_id_, severity_, file_, 0, msg.str(), ""});
    }
  }

  void emit(const std::string& message, const std::string& fixit = "") {
    if (emitted_ >= kMaxPerRule) {
      ++suppressed_;
      return;
    }
    ++emitted_;
    out_.push_back(Diagnostic{rule_id_, severity_, file_, 0, message, fixit});
  }

  int emitted() const { return emitted_; }

 private:
  std::vector<Diagnostic>& out_;
  std::string rule_id_;
  Severity severity_;
  std::string file_;
  int emitted_ = 0;
  int suppressed_ = 0;
};

std::string link_name(int q, std::int64_t i) {
  std::ostringstream s;
  s << "point " << i << ", direction " << q;
  return s.str();
}

}  // namespace

std::vector<Diagnostic> check_lattice(const LatticeView& view) {
  HEMO_EXPECTS(view.n >= 0);
  HEMO_EXPECTS(view.n == 0 || view.adjacency != nullptr);
  std::vector<Diagnostic> out;
  const std::int64_t n = view.n;
  auto adj = [&](int q, std::int64_t i) {
    return view.adjacency[static_cast<std::size_t>(q) *
                              static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(i)];
  };

  // Link slots already reported by an earlier rule; later rules skip them
  // so one corruption maps to exactly one rule id (no cascades).
  std::set<std::pair<int, std::int64_t>> faulted;

  {
    RuleEmitter oob(out, "LC001", Severity::kError, "lattice");
    for (int q = 0; q < lbm::kQ; ++q) {
      for (std::int64_t i = 0; i < n; ++i) {
        const PointIndex a = adj(q, i);
        if (a == kSolidNeighbor || (a >= 0 && a < n)) continue;
        faulted.emplace(q, i);
        std::ostringstream msg;
        msg << "out-of-bounds neighbor index " << a << " at " << link_name(q, i)
            << " (valid range [0, " << n << ") or solid)";
        oob.emit(msg.str(), "rebuild the adjacency map; streaming through "
                            "this link reads unowned memory");
      }
    }
  }

  {
    RuleEmitter rest(out, "LC002", Severity::kError, "lattice");
    for (std::int64_t i = 0; i < n; ++i) {
      if (faulted.contains({0, i})) continue;
      if (adj(0, i) != i) {
        faulted.emplace(0, i);
        std::ostringstream msg;
        msg << "rest-direction link of point " << i << " is " << adj(0, i)
            << ", expected the point itself";
        rest.emit(msg.str(), "the q=0 adjacency entry must be the identity");
      }
    }
  }

  {
    // Pull-scheme adjacency must be injective per direction: two points
    // with the same upstream neighbor correspond, in push streaming, to
    // two threads writing the same slot — a write-write race.
    RuleEmitter dup(out, "LC003", Severity::kError, "lattice");
    std::vector<std::int64_t> first_reader(static_cast<std::size_t>(n));
    for (int q = 1; q < lbm::kQ; ++q) {
      std::fill(first_reader.begin(), first_reader.end(),
                std::int64_t{-1});
      for (std::int64_t i = 0; i < n; ++i) {
        if (faulted.contains({q, i})) continue;
        const PointIndex a = adj(q, i);
        if (a == kSolidNeighbor) continue;
        auto& owner = first_reader[static_cast<std::size_t>(a)];
        if (owner < 0) {
          owner = i;
          continue;
        }
        faulted.emplace(q, i);
        std::ostringstream msg;
        msg << "duplicate streaming target: points " << owner << " and " << i
            << " both link to point " << a << " in direction " << q
            << " (write-write race in push streaming)";
        dup.emit(msg.str(),
                 "adjacency per direction must be injective over fluid "
                 "points");
      }
    }
  }

  {
    // Every pull link i <- j in direction q implies the reverse link
    // j <- i in the opposite direction; bounce-back relies on this
    // involution, and a one-sided link is a corrupted wall map.
    RuleEmitter inv(out, "LC004", Severity::kError, "lattice");
    for (int q = 1; q < lbm::kQ; ++q) {
      const int opp = lbm::opposite(q);
      for (std::int64_t i = 0; i < n; ++i) {
        if (faulted.contains({q, i})) continue;
        const PointIndex j = adj(q, i);
        if (j == kSolidNeighbor) continue;
        if (faulted.contains({opp, static_cast<std::int64_t>(j)})) continue;
        if (adj(opp, j) != i) {
          std::ostringstream msg;
          msg << "non-involutive link: " << link_name(q, i) << " reaches point "
              << j << " but " << link_name(opp, j) << " is "
              << adj(opp, j) << " instead of " << i;
          inv.emit(msg.str(),
                   "bounce-back requires neighbor(opp(q), neighbor(q, i)) "
                   "== i");
        }
      }
    }
  }

  return out;
}

std::vector<Diagnostic> check_lattice(const lbm::SparseLattice& lattice) {
  LatticeView view;
  view.n = lattice.size();
  view.adjacency = lattice.adjacency().data();
  view.node_types = lattice.node_types().data();
  std::vector<Diagnostic> out = check_lattice(view);

  // Inlet reachability: every fluid cell must be connected (through fluid
  // links, in either direction) to an inlet node, or it simulates a
  // stagnant pocket the inflow can never feed.  Lattices without inlet
  // nodes (periodic validation geometries) skip the check.
  const std::int64_t n = lattice.size();
  std::vector<std::int64_t> frontier;
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    if (lattice.node_type(i) == lbm::NodeType::kVelocityInlet) {
      visited[static_cast<std::size_t>(i)] = 1;
      frontier.push_back(i);
    }
  }
  if (!frontier.empty()) {
    while (!frontier.empty()) {
      const std::int64_t i = frontier.back();
      frontier.pop_back();
      for (int q = 1; q < lbm::kQ; ++q) {
        const PointIndex j = lattice.neighbor(q, i);
        if (j == kSolidNeighbor || j < 0 || j >= n) continue;
        if (!visited[static_cast<std::size_t>(j)]) {
          visited[static_cast<std::size_t>(j)] = 1;
          frontier.push_back(j);
        }
      }
    }
    std::int64_t unreachable = 0;
    std::int64_t example = -1;
    for (std::int64_t i = 0; i < n; ++i) {
      if (!visited[static_cast<std::size_t>(i)]) {
        if (example < 0) example = i;
        ++unreachable;
      }
    }
    if (unreachable > 0) {
      const Coord c = lattice.coord(example);
      std::ostringstream msg;
      msg << unreachable << " fluid cells are unreachable from the inlet "
          << "(first: point " << example << " at (" << c.x << ", " << c.y
          << ", " << c.z << "))";
      out.push_back(Diagnostic{"LC005", Severity::kWarning, "lattice", 0,
                               msg.str(),
                               "check the voxelization; disconnected pockets "
                               "never see the inflow"});
    }
  }
  return out;
}

std::vector<Diagnostic> check_partition(const lbm::SparseLattice& lattice,
                                        const decomp::Partition& partition) {
  std::vector<Diagnostic> out;
  const std::int64_t n = lattice.size();

  if (partition.owner.size() != static_cast<std::size_t>(n)) {
    std::ostringstream msg;
    msg << "owner array covers " << partition.owner.size() << " points but "
        << "the lattice has " << n;
    out.push_back(Diagnostic{"LC006", Severity::kError, "partition", 0,
                             msg.str(), "repartition after geometry changes"});
    return out;  // counts below would index out of bounds
  }

  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(std::max(partition.n_ranks, 0)), 0);
  {
    RuleEmitter range(out, "LC006", Severity::kError, "partition");
    for (std::int64_t i = 0; i < n; ++i) {
      const Rank r = partition.owner[static_cast<std::size_t>(i)];
      if (r < 0 || r >= partition.n_ranks) {
        std::ostringstream msg;
        msg << "point " << i << " is owned by rank " << r
            << ", outside [0, " << partition.n_ranks << ")";
        range.emit(msg.str());
        continue;
      }
      ++counts[static_cast<std::size_t>(r)];
    }
  }
  for (Rank r = 0; r < partition.n_ranks; ++r) {
    if (counts[static_cast<std::size_t>(r)] == 0) {
      std::ostringstream msg;
      msg << "rank " << r << " owns zero points (idle device)";
      out.push_back(Diagnostic{"LC007", Severity::kWarning, "partition", 0,
                               msg.str(),
                               "reduce the rank count or rebalance"});
    }
  }
  return out;
}

std::vector<Diagnostic> check_halo_plan(const lbm::SparseLattice& lattice,
                                        const decomp::Partition& partition,
                                        const decomp::HaloPlan& plan) {
  std::vector<Diagnostic> out;
  const decomp::HaloPlan truth = decomp::build_halo_plan(lattice, partition);

  // Per-rank occupancy, so LC011 can tell a live endpoint from a retired
  // one.  Out-of-range owner entries are LC006's finding, not ours; they
  // simply do not contribute occupancy here.
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(std::max(partition.n_ranks, 0)), 0);
  for (const Rank r : partition.owner)
    if (r >= 0 && r < partition.n_ranks)
      ++counts[static_cast<std::size_t>(r)];
  const auto endpoint_missing = [&](Rank r) {
    return r < 0 || r >= partition.n_ranks ||
           counts[static_cast<std::size_t>(r)] == 0;
  };

  using Key = std::pair<Rank, Rank>;
  std::map<Key, std::int64_t> claimed;
  {
    RuleEmitter shape(out, "LC008", Severity::kError, "halo-plan");
    RuleEmitter ghost(out, "LC011", Severity::kError, "halo-plan");
    for (const decomp::HaloMessage& m : plan.messages) {
      if (endpoint_missing(m.src) || endpoint_missing(m.dst)) {
        const Rank bad = endpoint_missing(m.src) ? m.src : m.dst;
        std::ostringstream msg;
        msg << "message " << m.src << " -> " << m.dst << " (" << m.values
            << " values) references rank " << bad << ", which ";
        if (bad < 0 || bad >= partition.n_ranks)
          msg << "is outside the partition's [0, " << partition.n_ranks
              << ") rank range";
        else
          msg << "owns zero points in this partition (retired by a shrink "
                 "or never populated)";
        ghost.emit(msg.str(),
                   "rebuild the halo plan from the current partition; "
                   "traffic routed through a missing rank is never "
                   "delivered");
        continue;  // exclude from LC008 so one stale message = one finding
      }
      if (m.src == m.dst) {
        std::ostringstream msg;
        msg << "self-message on rank " << m.src
            << ": halo pack/unpack would overlap the rank's own interior "
               "updates";
        shape.emit(msg.str());
        continue;
      }
      auto [it, inserted] = claimed.emplace(Key{m.src, m.dst}, m.values);
      if (!inserted) {
        std::ostringstream msg;
        msg << "duplicate message " << m.src << " -> " << m.dst
            << ": the second unpack overwrites the first";
        shape.emit(msg.str());
        it->second += m.values;
      }
    }
  }

  RuleEmitter diff(out, "LC008", Severity::kError, "halo-plan");
  for (const decomp::HaloMessage& t : truth.messages) {
    const auto it = claimed.find(Key{t.src, t.dst});
    if (it == claimed.end()) {
      std::ostringstream msg;
      msg << "missing message " << t.src << " -> " << t.dst << " ("
          << t.values << " values): ghosts on rank " << t.dst
          << " would keep stale data";
      diff.emit(msg.str(), "rebuild the halo plan from the current "
                           "partition");
      continue;
    }
    if (it->second != t.values) {
      std::ostringstream msg;
      msg << "message " << t.src << " -> " << t.dst << " carries "
          << it->second << " values, lattice requires " << t.values
          << (it->second < t.values ? " (truncated halo map)"
                                    : " (overfull halo map)");
      diff.emit(msg.str(), "rebuild the halo plan from the current "
                           "partition");
    }
    claimed.erase(it);
  }
  for (const auto& [key, values] : claimed) {
    std::ostringstream msg;
    msg << "spurious message " << key.first << " -> " << key.second << " ("
        << values << " values) not implied by any crossing lattice link";
    diff.emit(msg.str());
  }
  return out;
}

std::vector<Diagnostic> check_exchange_auditability(
    const std::vector<ExchangeSlots>& exchanges) {
  std::vector<Diagnostic> out;
  RuleEmitter dup(out, "LC010", Severity::kWarning, "halo-exchange");
  // (dst, q, slot) -> index of the exchange that first claimed it.
  std::map<std::tuple<Rank, int, std::int64_t>, std::size_t> first_claim;
  for (std::size_t x = 0; x < exchanges.size(); ++x) {
    const ExchangeSlots& e = exchanges[x];
    HEMO_EXPECTS(e.count == 0 || (e.q != nullptr && e.dst_local != nullptr));
    for (std::int64_t k = 0; k < e.count; ++k) {
      const auto key = std::make_tuple(
          e.dst, e.q[static_cast<std::size_t>(k)],
          e.dst_local[static_cast<std::size_t>(k)]);
      auto [it, inserted] = first_claim.emplace(key, x);
      if (inserted) continue;
      const ExchangeSlots& other = exchanges[it->second];
      if (other.src == e.src && other.dst == e.dst)
        continue;  // within-exchange duplicate: that is LC009's finding
      std::ostringstream msg;
      msg << "ghost slot (q " << e.q[static_cast<std::size_t>(k)] << ", slot "
          << e.dst_local[static_cast<std::size_t>(k)] << ") on rank " << e.dst
          << " is unpacked by exchanges " << other.src << " -> " << other.dst
          << " and " << e.src << " -> " << e.dst
          << "; a CRC frame failure there cannot be attributed to a sender";
      dup.emit(msg.str(),
               "give each ghost slot a single producing exchange so "
               "retransmission can name the faulty edge");
    }
  }
  return out;
}

}  // namespace hemo::analysis
