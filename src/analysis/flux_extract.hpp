#pragma once
// hemo-flux extractor: derives the access IR (flux_ir.hpp) from kernel
// sources by symbolic walk, not by execution.  The corpus dialects share
// one constrained syntax (plain C++ functors over the hal shims, bodies
// delegating to the inline kernels of src/lbm/kernels.hpp), which is what
// makes a static byte count exact rather than heuristic:
//
//   - `for (int q = 0; q < kQ; ++q)` loops multiply enclosed accesses
//     by 19; literal bounds multiply by their value.
//   - if / else-if / else alternatives contribute the per-array MAXIMUM
//     of their branches (the bound the bandwidth model charges); an
//     if-block ending in `continue` or `return` turns the remainder of
//     its enclosing block into the implicit else branch.
//   - calls into the shared inline kernel bodies (gather, moments_of,
//     bgk_collide, zou_he_complete, stream_collide_point, ...) are
//     resolved by inlining the callee's walk with formal->actual array
//     bindings, so stack arrays stay register-class across calls.
//
// Subscript expressions are classified by layout (unit / SoA / AoS /
// gather) and arrays by role (distribution, adjacency, halo buffer,
// ...), giving the MT rules exactly the quantities Section 6's model
// asserts: 2*19*8 distribution bytes per point for stream-collide, one
// 8-byte payload per halo value for pack/unpack.

#include <string>
#include <vector>

#include "analysis/flux_ir.hpp"
#include "port/corpus.hpp"

namespace hemo::analysis {

/// One source buffer fed to the extractor (display name + content).
struct FluxSource {
  std::string file;
  std::string content;
};

/// Extracts a profile for every kernel functor (struct with operator())
/// found in `sources`.  Inline free functions defined in any source are
/// available for call resolution from any other.  Profiles come back in
/// (file, kernel) order.
std::vector<KernelProfile> extract_kernel_profiles(
    const std::vector<FluxSource>& sources);

/// Profiles of one corpus dialect's kernels.h, resolved against the
/// shared kernel bodies of src/lbm/kernels.hpp.  File names are prefixed
/// with the dialect directory ("cudax/kernels.h").
std::vector<KernelProfile> extract_dialect_profiles(
    port::CorpusDialect dialect);

/// The hot kernels whose traffic the Section 6 model constrains.
bool is_hot_loop_kernel(const std::string& kernel);

}  // namespace hemo::analysis
