#pragma once
// Unified rule registry: one enumeration of every diagnostic rule the
// repository can emit, across all five families —
//
//   HL  portability lint over the porting corpus      (rules.hpp)
//   LC  lattice / decomposition consistency           (lattice_check.hpp,
//                                                      DistributedSolver)
//   RS  resilience health guards                      (resilience/policy.hpp)
//   MT  static memory-traffic audit                   (flux_rules.hpp)
//   CC  static concurrency audit                      (concurrency.hpp)
//
// HL, MT and CC entries come from their live rule tables; LC and RS
// rules are emitted ad hoc at their check sites, so the registry carries
// their catalog rows directly (the registry integrity test pins this
// list against DESIGN.md's rule-catalog table and against fixture
// coverage, so a new rule cannot land undocumented or untested).

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace hemo::analysis {

/// Every known rule, in family order (HL, LC, RS, MT, CC), id-sorted
/// within each family.
std::vector<RuleInfo> rule_registry();

/// Ids of every rule in the registry, in registry order.
std::vector<std::string> rule_ids();

/// True if every id in the registry occurs exactly once.
bool registry_ids_unique();

/// Looks a rule up by id; nullptr-free: returns an empty-id RuleInfo if
/// unknown.
RuleInfo find_rule(const std::string& id);

}  // namespace hemo::analysis
