#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <tuple>

namespace hemo::analysis {

void sort_diagnostics(std::vector<Diagnostic>& diagnostics) {
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule_id, a.message) <
                     std::tie(b.file, b.line, b.rule_id, b.message);
            });
}

std::map<std::string, int> count_by_rule(const std::vector<Diagnostic>& ds) {
  std::map<std::string, int> counts;
  for (const Diagnostic& d : ds) ++counts[d.rule_id];
  return counts;
}

std::map<std::string, int> count_by_file(const std::vector<Diagnostic>& ds) {
  std::map<std::string, int> counts;
  for (const Diagnostic& d : ds) ++counts[d.file];
  return counts;
}

std::map<Severity, int> count_by_severity(const std::vector<Diagnostic>& ds) {
  std::map<Severity, int> counts;
  for (const Diagnostic& d : ds) ++counts[d.severity];
  return counts;
}

int count_at(const std::vector<Diagnostic>& ds, Severity s) {
  int n = 0;
  for (const Diagnostic& d : ds)
    if (d.severity == s) ++n;
  return n;
}

}  // namespace hemo::analysis
