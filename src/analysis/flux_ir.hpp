#pragma once
// hemo-flux access IR: the per-kernel memory-access summary the static
// traffic analyzer (flux_extract.hpp) derives from the HAL dialect
// corpora, and that the MT rule family (flux_rules.hpp) audits against
// the Section 6 performance model.
//
// The IR is deliberately small: one kernel is a bag of array accesses,
// each with a direction, a stride/layout class, and an expected count
// per lattice point (branch alternatives contribute their maximum, so
// counts are the upper bound the bandwidth model charges).  Everything
// the rules need — bytes per point by role, layout hazards, redundant
// re-loads — is a fold over this structure.

#include <cstdint>
#include <string>
#include <vector>

namespace hemo::analysis {

enum class AccessDir { kLoad, kStore };

/// Layout class of one subscript expression.
enum class StrideClass {
  kUnit,     // f[i]: consecutive threads touch consecutive elements
  kSoA,      // f[q * n + i]: structure-of-arrays, coalesced per direction
  kAoS,      // f[i * kQ + q]: array-of-structures, 19-element thread stride
  kGather,   // f[indices[i]]: data-dependent indirection
};

/// What an array means to the traffic model.  Only distribution and halo
/// payload traffic enter the Section 6 byte counts; adjacency/node-type
/// metadata is reported separately, and locals are register-resident.
enum class ArrayRole {
  kDistribution,   // f_in / f_out / f: the D3Q19 populations
  kAdjacency,      // pull-scheme neighbor indices
  kNodeType,       // per-point boundary classification
  kHaloBuffer,     // send / recv staging buffers
  kIndexList,      // halo gather/scatter index lists
  kScratch,        // reduction scratch, output slices, generic fields
  kConstantTable,  // lattice constants (kWeights, kC): cached, not streamed
  kLocal,          // stack arrays inside the kernel: registers, no traffic
};

const char* dir_name(AccessDir dir);
const char* stride_name(StrideClass stride);
const char* role_name(ArrayRole role);

/// One (array, direction) access pattern of a kernel.
struct ArrayAccess {
  std::string array;            // canonical name: "f_in", "adjacency", ...
  ArrayRole role = ArrayRole::kScratch;
  AccessDir dir = AccessDir::kLoad;
  StrideClass stride = StrideClass::kUnit;
  double count_per_point = 0.0;  // expected accesses per lattice point
  int elem_bytes = 8;

  double bytes_per_point() const { return count_per_point * elem_bytes; }

  friend bool operator==(const ArrayAccess&, const ArrayAccess&) = default;
};

/// The access IR of one kernel functor in one dialect.
struct KernelProfile {
  std::string kernel;  // functor name, e.g. "StreamCollideKernel"
  std::string file;    // source it was extracted from, e.g. "cudax/kernels.h"
  int line = 0;        // 1-based line of the functor definition
  std::vector<ArrayAccess> accesses;  // sorted by (array, dir)
  double flops_per_point = 0.0;

  /// Sum of count*elem over accesses matching the filters.  Roles
  /// kConstantTable and kLocal never contribute (no streamed traffic).
  double bytes_per_point(ArrayRole role, AccessDir dir) const;
  double bytes_per_point(ArrayRole role) const;

  /// Distribution payload only: the quantity Eq. 1 charges per point.
  double distribution_bytes_per_point() const;

  /// True when the kernel updates its distribution storage in place:
  /// every distribution array it stores to is one it also loads from
  /// (the AA propagation kernels and the collide-only ablation; the pull
  /// kernels read f_in and write the distinct f_out).
  bool in_place_distribution_update() const;

  /// Distribution bytes per point under the Section 6 array-pass
  /// convention: an array that is both read and written in place makes
  /// ONE pass (charged max(load, store) bytes — the in-place line is
  /// already resident when written back), while distinct read and write
  /// arrays each make their own pass and sum.  This is the number the
  /// model's propagation_bytes_per_point() mirrors: 2*19*8 for pull,
  /// 19*8 for the AA kernels.
  double streamed_distribution_bytes_per_point() const;

  /// All streamed device traffic (distribution + metadata + buffers).
  double total_bytes_per_point() const;

  double loads_per_point(const std::string& array) const;
  double stores_per_point(const std::string& array) const;
  bool touches_stride(ArrayRole role, StrideClass stride) const;
};

/// Stable presentation order for profiles: (file, kernel).
void sort_profiles(std::vector<KernelProfile>& profiles);

}  // namespace hemo::analysis
