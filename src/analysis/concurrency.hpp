#pragma once
// hemo-flux CC rule family: a static concurrency audit of the campaign
// runtime (src/rt) and the resilience layer (src/resilience).  The
// scanner is convention-driven — it understands this repository's
// idioms, not C++ in general:
//
//   - a class declaring a std::mutex member is a *guarded class*; its
//     trailing-underscore identifiers are members owned by that mutex
//   - a lock is std::lock_guard / std::unique_lock / std::scoped_lock;
//     accesses after the first lock construction in a body are treated
//     as protected (the runtime's methods lock at the top)
//   - exemptions: constructors/destructors, methods named *_locked
//     (callers hold the lock), and methods carrying an annotation
//     comment — "requires <mu> held", "guarded by", or "immutable
//     after construction" — on their declaration or definition line
//
// Rules:
//   CC001  member of a guarded class written without the owning lock
//   CC002  lock-order inversion: two functions acquire the same two
//          mutexes in opposite orders
//   CC003  non-atomic member returned (read) without the owning lock
//   CC004  checkpoint-slot mutation (record()/clear()) inside an
//          in-flight recovery path (function named recover*/restore*/
//          resume*/rollback*)
//
// The checked-in runtime is clean; each rule has seeded-defect fixtures
// under tests/analysis/.  The CI ThreadSanitizer job cross-checks CC001
// and CC003 dynamically over the tests/rt executor suite.

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/flux_extract.hpp"

namespace hemo::analysis {

/// CC001..CC004, in id order.
const std::vector<RuleInfo>& concurrency_rules();

/// Scans the given sources as one program (guarded classes declared in
/// one source govern method bodies found in another).
std::vector<Diagnostic> check_concurrency(
    const std::vector<FluxSource>& sources);

/// Scans the checked-in src/rt + src/resilience trees.
std::vector<Diagnostic> check_runtime_concurrency();

}  // namespace hemo::analysis
