#include "analysis/concurrency.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

#include "base/contracts.hpp"

#ifndef HEMO_REPO_DIR
#error "HEMO_REPO_DIR must be defined by the build system"
#endif

namespace hemo::analysis {

namespace {

// ---------------------------------------------------------------------------
// Shared text utilities (kept local: the flux extractor's are private too,
// and the two scanners evolve independently).
// ---------------------------------------------------------------------------

std::string strip_comments(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') state = State::kLine;
        else if (c == '/' && next == '*') state = State::kBlock;
        else if (c == '"') state = State::kString;
        else if (c == '\'') state = State::kChar;
        if (state != State::kCode && c != '\n') out[i] = ' ';
        break;
      case State::kLine:
        if (c == '\n') state = State::kCode;
        else out[i] = ' ';
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') { out[i + 1] = ' '; ++i; }
        } else if (c == quote) {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

int line_at(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos, text.size())),
                            '\n'));
}

std::size_t match_delim(const std::string& text, std::size_t pos) {
  const char open = text[pos];
  const char close = open == '(' ? ')' : open == '{' ? '}' : ']';
  int depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    else if (text[i] == close && --depth == 0) return i + 1;
  }
  return text.size();
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool is_keyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "alignof", "decltype", "static_cast", "const_cast", "dynamic_cast",
      "reinterpret_cast", "assert", "HEMO_EXPECTS", "HEMO_ENSURES",
      "defined", "throw", "noexcept", "new", "delete"};
  return kKeywords.contains(name);
}

Diagnostic make(const std::string& rule, const std::string& file, int line,
                std::string message, std::string fixit) {
  Diagnostic d;
  d.rule_id = rule;
  for (const RuleInfo& info : concurrency_rules())
    if (info.id == rule) d.severity = info.severity;
  d.file = file;
  d.line = line;
  d.message = std::move(message);
  d.fixit_hint = std::move(fixit);
  return d;
}

// ---------------------------------------------------------------------------
// Program model.
// ---------------------------------------------------------------------------

struct GuardedClass {
  std::string name;
  std::set<std::string> mutexes;       // mutex member names ("mu_")
  std::set<std::string> atomics;       // std::atomic members: lock-free
  std::string file;
  std::size_t body_begin = 0;          // span in that file's stripped text
  std::size_t body_end = 0;
};

struct Function {
  std::string qualified;   // "Executor::pop_task" or "workers"
  std::string name;        // unqualified
  std::string class_name;  // owning guarded class, empty otherwise
  std::string file;
  int line = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  const std::string* text = nullptr;  // stripped source the spans index
};

struct Program {
  std::vector<GuardedClass> classes;
  std::vector<Function> functions;
  std::set<std::string> annotated;  // method names with a lock annotation
  std::vector<std::string> stripped;  // parallel to sources
};

bool annotation_comment(const std::string& raw_line) {
  return raw_line.find("//") != std::string::npos &&
         (raw_line.find("held") != std::string::npos ||
          raw_line.find("guarded by") != std::string::npos ||
          raw_line.find("immutable after construction") != std::string::npos ||
          raw_line.find("single-threaded") != std::string::npos);
}

/// Every "name(" on an annotated line registers `name`; an annotation
/// line with no call-ish token annotates the first "name(" of the next
/// line (comment-above style).
void collect_annotations(const std::string& raw, std::set<std::string>* out) {
  std::vector<std::string> lines;
  std::istringstream in(raw);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  static const std::regex kIdentParen(R"(([A-Za-z_]\w*)\s*\()");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!annotation_comment(lines[i])) continue;
    const std::string code = lines[i].substr(0, lines[i].find("//"));
    bool found = false;
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kIdentParen);
         it != std::sregex_iterator(); ++it) {
      if (is_keyword((*it)[1].str())) continue;
      out->insert((*it)[1].str());
      found = true;
    }
    if (!found && i + 1 < lines.size()) {
      std::smatch m;
      if (std::regex_search(lines[i + 1], m, kIdentParen) &&
          !is_keyword(m[1].str()))
        out->insert(m[1].str());
    }
  }
}

void collect_classes(const std::string& stripped, const std::string& file,
                     std::vector<GuardedClass>* out) {
  static const std::regex kClass(R"(\b(?:class|struct)\s+(\w+)\s*(?::[^{;]*)?\{)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), kClass);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position(0)) + it->length(0) - 1;
    const std::size_t close = match_delim(stripped, open);
    const std::string body = stripped.substr(open + 1, close - open - 2);
    GuardedClass cls;
    cls.name = (*it)[1].str();
    cls.file = file;
    cls.body_begin = open + 1;
    cls.body_end = close - 1;
    static const std::regex kMutex(R"(std::mutex\s+(\w+))");
    for (auto m = std::sregex_iterator(body.begin(), body.end(), kMutex);
         m != std::sregex_iterator(); ++m)
      cls.mutexes.insert((*m)[1].str());
    static const std::regex kAtomic(R"(std::atomic\s*<[^>]*>\s+(\w+))");
    for (auto m = std::sregex_iterator(body.begin(), body.end(), kAtomic);
         m != std::sregex_iterator(); ++m)
      cls.atomics.insert((*m)[1].str());
    if (!cls.mutexes.empty()) out->push_back(std::move(cls));
  }
}

void collect_functions(const std::string& stripped, const std::string& file,
                       const std::vector<GuardedClass>& classes,
                       const std::string* text_owner,
                       std::vector<Function>* out) {
  static const std::regex kFn(R"(([A-Za-z_][\w]*(?:::~?\w+)*)\s*\()");
  std::size_t pos = 0;
  while (pos < stripped.size()) {
    const std::string window = stripped.substr(pos);
    std::smatch m;
    if (!std::regex_search(window, m, kFn)) return;
    const std::size_t name_pos = pos + static_cast<std::size_t>(m.position(1));
    const std::size_t open = pos + static_cast<std::size_t>(m.position(0)) +
                             static_cast<std::size_t>(m.length(0)) - 1;
    const std::string qualified = m[1].str();
    // Member calls (x.f(), p->f()) are not definitions.
    std::size_t before = name_pos;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(stripped[before - 1])))
      --before;
    const bool member_call =
        before > 0 && (stripped[before - 1] == '.' ||
                       (before > 1 && stripped[before - 2] == '-' &&
                        stripped[before - 1] == '>'));
    const std::size_t params_close = match_delim(stripped, open);
    std::size_t cursor = params_close;
    if (member_call || is_keyword(qualified)) {
      pos = params_close;
      continue;
    }
    // Skip qualifiers; accept "{", or ": init-list ... {" for ctors.
    bool is_def = false;
    while (cursor < stripped.size()) {
      while (cursor < stripped.size() &&
             std::isspace(static_cast<unsigned char>(stripped[cursor])))
        ++cursor;
      if (cursor >= stripped.size()) break;
      const char c = stripped[cursor];
      if (c == '{') { is_def = true; break; }
      if (c == ':') {  // constructor initializer list
        while (cursor < stripped.size() && stripped[cursor] != '{') {
          if (stripped[cursor] == '(')
            cursor = match_delim(stripped, cursor);
          else
            ++cursor;
        }
        continue;
      }
      if (stripped.compare(cursor, 5, "const") == 0 ||
          stripped.compare(cursor, 8, "noexcept") == 0 ||
          stripped.compare(cursor, 8, "override") == 0) {
        cursor += stripped[cursor] == 'c' ? 5 : 8;
        continue;
      }
      break;  // declaration, call statement, ...
    }
    if (!is_def) {
      pos = params_close;
      continue;
    }
    Function fn;
    fn.qualified = qualified;
    const std::size_t sep = qualified.rfind("::");
    fn.name = sep == std::string::npos ? qualified : qualified.substr(sep + 2);
    if (sep != std::string::npos) {
      const std::string owner = qualified.substr(0, qualified.find("::"));
      for (const GuardedClass& cls : classes)
        if (cls.name == owner) fn.class_name = owner;
    } else {
      for (const GuardedClass& cls : classes)
        if (cls.file == file && name_pos > cls.body_begin &&
            name_pos < cls.body_end)
          fn.class_name = cls.name;
    }
    fn.file = file;
    fn.line = line_at(stripped, name_pos);
    fn.body_begin = cursor + 1;
    fn.body_end = match_delim(stripped, cursor) - 1;
    fn.text = text_owner;
    const std::size_t resume_at = fn.body_end + 1;
    out->push_back(std::move(fn));
    pos = resume_at;  // bodies are not re-scanned for definitions
  }
}

// ---------------------------------------------------------------------------
// Rule checks.
// ---------------------------------------------------------------------------

const GuardedClass* find_class(const Program& program,
                               const std::string& name) {
  for (const GuardedClass& cls : program.classes)
    if (cls.name == name) return &cls;
  return nullptr;
}

bool exempt(const Function& fn, const Program& program) {
  if (fn.name == fn.class_name) return true;            // constructor
  if (!fn.name.empty() && fn.qualified.find('~') != std::string::npos)
    return true;                                        // destructor
  if (fn.name.ends_with("_locked")) return true;        // caller locks
  return program.annotated.contains(fn.name);
}

/// Position of the first lock construction in the body, or npos.
std::size_t first_lock(const std::string& body) {
  static const std::regex kLock(R"(\b(?:lock_guard|unique_lock|scoped_lock)\b)");
  std::smatch m;
  if (std::regex_search(body, m, kLock))
    return static_cast<std::size_t>(m.position(0));
  return std::string::npos;
}

/// Ordered distinct mutex names this body locks, with positions.
std::vector<std::pair<std::string, std::size_t>> lock_sequence(
    const std::string& body) {
  std::vector<std::pair<std::string, std::size_t>> seq;
  static const std::regex kLock(
      R"(\b(?:lock_guard|unique_lock|scoped_lock)\s*(?:<[^>]*>)?\s*\w*\s*\(([^()]*)\))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kLock);
       it != std::sregex_iterator(); ++it) {
    for (const std::string& arg : [&] {
           std::vector<std::string> parts;
           std::string current;
           for (const char c : (*it)[1].str()) {
             if (c == ',') { parts.push_back(current); current.clear(); }
             else current += c;
           }
           parts.push_back(current);
           return parts;
         }()) {
      // Last dotted component, trimmed: "state.mu_" -> "mu_".
      std::string name = arg;
      const std::size_t dot = name.find_last_of(".>");
      if (dot != std::string::npos) name = name.substr(dot + 1);
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](unsigned char c) {
                                  return std::isspace(c) || c == '&' ||
                                         c == '*';
                                }),
                 name.end());
      if (name.empty()) continue;
      bool seen = false;
      for (const auto& [existing, pos] : seq) seen = seen || existing == name;
      if (!seen)
        seq.emplace_back(name, static_cast<std::size_t>(it->position(0)));
    }
  }
  return seq;
}

void check_guarded_access(const Program& program, const Function& fn,
                          std::vector<Diagnostic>* out) {
  if (fn.class_name.empty() || exempt(fn, program)) return;
  const GuardedClass* cls = find_class(program, fn.class_name);
  if (cls == nullptr) return;
  const std::string body =
      fn.text->substr(fn.body_begin, fn.body_end - fn.body_begin);
  const std::size_t lock_pos = first_lock(body);
  const std::string mutex = cls->mutexes.contains("mu_")
                                ? std::string("mu_")
                                : *cls->mutexes.begin();

  const auto reported_line = [&](std::size_t body_pos) {
    return line_at(*fn.text, fn.body_begin + body_pos);
  };
  const auto unprotected = [&](std::size_t body_pos) {
    return lock_pos == std::string::npos || body_pos < lock_pos;
  };
  const auto is_member = [&](const std::string& name) {
    return name.ends_with('_') && !cls->atomics.contains(name) &&
           !cls->mutexes.contains(name);
  };

  // CC001: member writes.
  static const std::regex kWrite(
      R"(([A-Za-z_]\w*)((?:\.\w+|\[[^\]]*\])*)\s*(?:=(?![=])|\+=|-=|\*=|/=|\|=|&=|\^=|\.(?:push_back|pop_back|pop_front|erase|clear|emplace|emplace_back|insert|resize|reset|assign)\s*\()|(?:\+\+|--)\s*([A-Za-z_]\w*))");
  std::set<std::pair<std::string, int>> seen;
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kWrite);
       it != std::sregex_iterator(); ++it) {
    const std::string name =
        (*it)[3].matched ? (*it)[3].str() : (*it)[1].str();
    const std::size_t at = static_cast<std::size_t>(it->position(0));
    if (!is_member(name) || !unprotected(at)) continue;
    const int line = reported_line(at);
    if (!seen.insert({name, line}).second) continue;
    out->push_back(make(
        "CC001", fn.file, line,
        "member '" + name + "' of guarded class '" + cls->name +
            "' written in '" + fn.qualified + "' without holding '" + mutex +
            "'",
        "lock " + mutex + " first, rename the method *_locked, or annotate "
        "the declaration '// requires " + mutex + " held'"));
  }

  // CC003: members handed out of the class by an unlocked read.
  static const std::regex kReturn(R"(return\b([^;]*);)");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kReturn);
       it != std::sregex_iterator(); ++it) {
    const std::size_t at = static_cast<std::size_t>(it->position(0));
    if (!unprotected(at)) continue;
    const std::string expr = (*it)[1].str();
    static const std::regex kIdent(R"([A-Za-z_]\w*)");
    for (auto id = std::sregex_iterator(expr.begin(), expr.end(), kIdent);
         id != std::sregex_iterator(); ++id) {
      const std::string name = id->str();
      if (!is_member(name)) continue;
      const int line = reported_line(at);
      if (!seen.insert({name, line}).second) continue;
      out->push_back(make(
          "CC003", fn.file, line,
          "non-atomic member '" + name + "' of guarded class '" + cls->name +
              "' returned from '" + fn.qualified + "' without holding '" +
              mutex + "'",
          "take the lock, make the member std::atomic, or annotate the "
          "accessor '// immutable after construction'"));
    }
  }
}

void check_lock_order(const Program& program, std::vector<Diagnostic>* out) {
  struct Acquisition {
    std::string fn;
    std::string file;
    int line = 0;
  };
  std::map<std::pair<std::string, std::string>, Acquisition> order;
  std::set<std::pair<std::string, std::string>> reported;
  for (const Function& fn : program.functions) {
    const std::string body =
        fn.text->substr(fn.body_begin, fn.body_end - fn.body_begin);
    const auto seq = lock_sequence(body);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        const std::string& a = seq[i].first;
        const std::string& b = seq[j].first;
        const int line = line_at(*fn.text, fn.body_begin + seq[j].second);
        order.try_emplace({a, b}, Acquisition{fn.qualified, fn.file, line});
        const auto inverse = order.find({b, a});
        if (inverse == order.end()) continue;
        const auto key = std::minmax(a, b);
        if (!reported.insert({key.first, key.second}).second) continue;
        out->push_back(make(
            "CC002", fn.file, line,
            "lock-order inversion: '" + fn.qualified + "' acquires '" + a +
                "' then '" + b + "' but '" + inverse->second.fn +
                "' (" + inverse->second.file + ":" +
                std::to_string(inverse->second.line) + ") acquires them in "
                "the opposite order",
            "pick one global acquisition order for the two mutexes"));
      }
    }
  }
}

void check_checkpoint_mutation(const Program& program,
                               std::vector<Diagnostic>* out) {
  static const std::regex kMutation(
      R"(([A-Za-z_]\w*)\s*(?:\.|->)\s*(record|clear)\s*\()");
  for (const Function& fn : program.functions) {
    const std::string name = lower(fn.name);
    const bool recovery_path =
        name.find("recover") != std::string::npos ||
        name.find("restore") != std::string::npos ||
        name.find("resume") != std::string::npos ||
        name.find("rollback") != std::string::npos;
    if (!recovery_path) continue;
    const std::string body =
        fn.text->substr(fn.body_begin, fn.body_end - fn.body_begin);
    for (auto it = std::sregex_iterator(body.begin(), body.end(), kMutation);
         it != std::sregex_iterator(); ++it) {
      const std::string var = lower((*it)[1].str());
      if (var.find("slot") == std::string::npos &&
          var.find("checkpoint") == std::string::npos)
        continue;
      out->push_back(make(
          "CC004", fn.file,
          line_at(*fn.text,
                  fn.body_begin + static_cast<std::size_t>(it->position(0))),
          "checkpoint slot '" + (*it)[1].str() + "' mutated by " +
              (*it)[2].str() + "() inside recovery path '" + fn.qualified +
              "': a concurrent retry reading the slot observes a torn "
              "restore point",
          "defer record()/clear() until the recovery attempt completes"));
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& concurrency_rules() {
  static const std::vector<RuleInfo> rules = {
      {"CC001", "unlocked-member-write", Severity::kError,
       "member of a mutex-guarded class written without the owning lock"},
      {"CC002", "lock-order-inversion", Severity::kError,
       "two functions acquire the same two mutexes in opposite orders"},
      {"CC003", "unlocked-member-read", Severity::kWarning,
       "non-atomic member returned without the owning lock"},
      {"CC004", "checkpoint-mutation-in-recovery", Severity::kError,
       "checkpoint slot mutated while a recovery attempt is in flight"},
  };
  return rules;
}

std::vector<Diagnostic> check_concurrency(
    const std::vector<FluxSource>& sources) {
  Program program;
  program.stripped.reserve(sources.size());
  for (const FluxSource& source : sources) {
    program.stripped.push_back(strip_comments(source.content));
    collect_annotations(source.content, &program.annotated);
  }
  for (std::size_t i = 0; i < sources.size(); ++i)
    collect_classes(program.stripped[i], sources[i].file, &program.classes);
  for (std::size_t i = 0; i < sources.size(); ++i)
    collect_functions(program.stripped[i], sources[i].file, program.classes,
                      &program.stripped[i], &program.functions);

  std::vector<Diagnostic> out;
  for (const Function& fn : program.functions)
    check_guarded_access(program, fn, &out);
  check_lock_order(program, &out);
  check_checkpoint_mutation(program, &out);
  sort_diagnostics(out);
  return out;
}

std::vector<Diagnostic> check_runtime_concurrency() {
  namespace fs = std::filesystem;
  std::vector<FluxSource> sources;
  for (const char* dir : {"src/rt", "src/resilience", "src/serve"}) {
    const fs::path root = fs::path(HEMO_REPO_DIR) / dir;
    HEMO_EXPECTS(fs::is_directory(root));
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(root)) {
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& path : files) {
      std::ifstream in(path);
      HEMO_EXPECTS(in.good());
      std::ostringstream buffer;
      buffer << in.rdbuf();
      sources.push_back(FluxSource{
          std::string(dir) + "/" + path.filename().string(), buffer.str()});
    }
  }
  return check_concurrency(sources);
}

}  // namespace hemo::analysis
