#pragma once
// Reporters for hemo-lint diagnostics: a compiler-style text listing and
// a SARIF-lite JSON document, stable enough for CI to diff lint baselines
// across PRs (same schema keys, sorted records).

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace hemo::analysis {

/// "file:line: severity: [RULE] message" lines followed by per-rule and
/// per-severity summary counts.  Diagnostics are printed in the order
/// given (callers usually sort first).
std::string text_report(const std::vector<Diagnostic>& diagnostics);

/// SARIF-lite JSON:
///   {"version": "hemo-lint/1",
///    "results": [{"ruleId", "level", "file", "line", "message", "fixit"}],
///    "summary": {"total": N, "byRule": {...}, "bySeverity": {...}}}
/// Records keep the caller's order; keys are emitted sorted.
std::string json_report(const std::vector<Diagnostic>& diagnostics);

/// JSON string escaping (exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace hemo::analysis
