#pragma once
// Baseline suppression for hemo-lint: adopt a new rule family on a
// legacy tree without fixing (or silencing) every existing finding at
// once.  `hemo_lint --emit-baseline f` writes the current findings to
// `f`; later runs with `--baseline f` subtract them and report only new
// findings, so CI can gate on "no regressions" immediately and the
// baseline can be burned down over time.
//
// Matching is structural, not positional: a baseline entry is
// (rule_id, file, message), and suppression is multiset subtraction —
// line numbers are deliberately ignored so unrelated edits above a
// finding do not resurrect it.  The file format is one
// tab-separated "rule\tfile\tmessage" line per finding, sorted,
// with '#' comments; stable under re-emission (round-trip emits a
// byte-identical file when findings have not changed).

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace hemo::analysis {

/// Serializes findings as baseline text (sorted, deduplicated to
/// per-entry counts by repetition).
std::string write_baseline(const std::vector<Diagnostic>& diagnostics);

/// Parses baseline text; unparseable lines are ignored.
/// Returned entries are Diagnostics carrying only rule_id/file/message.
std::vector<Diagnostic> parse_baseline(const std::string& text);

/// Multiset subtraction: each baseline entry cancels at most one
/// matching finding (match on rule_id + file + message; line ignored).
std::vector<Diagnostic> apply_baseline(
    const std::vector<Diagnostic>& diagnostics,
    const std::vector<Diagnostic>& baseline);

}  // namespace hemo::analysis
