#include "analysis/flux_rules.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "analysis/report.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/propagation.hpp"
#include "port/corpus.hpp"

namespace hemo::analysis {

namespace {

constexpr double kTolerance = 1e-9;

bool differs(double a, double b) { return std::fabs(a - b) > kTolerance; }

std::string fmt(double v) {
  std::ostringstream out;
  if (v == static_cast<long long>(v)) {
    out << static_cast<long long>(v);
  } else {
    out << v;
  }
  return out.str();
}

Diagnostic make(const std::string& rule, const std::string& file, int line,
                std::string message, std::string fixit) {
  const std::vector<RuleInfo>& rules = flux_rules();
  Diagnostic d;
  d.rule_id = rule;
  for (const RuleInfo& info : rules)
    if (info.id == rule) d.severity = info.severity;
  d.file = file;
  d.line = line;
  d.message = std::move(message);
  d.fixit_hint = std::move(fixit);
  return d;
}

const char* dialect_label(port::CorpusDialect dialect) {
  switch (dialect) {
    case port::CorpusDialect::kCudax: return "cudax";
    case port::CorpusDialect::kHipx: return "hipx";
    case port::CorpusDialect::kSyclx: return "syclx";
    case port::CorpusDialect::kKokkosx: return "kokkosx";
  }
  return "?";
}

}  // namespace

const std::vector<RuleInfo>& flux_rules() {
  static const std::vector<RuleInfo> rules = {
      {"MT001", "model-bytes-mismatch", Severity::kError,
       "hot-loop distribution bytes/point disagree with "
       "perf::ModelParams::bytes_per_point"},
      {"MT002", "aos-hot-loop", Severity::kError,
       "non-coalesced AoS distribution access on a hot-loop kernel"},
      {"MT003", "redundant-reload", Severity::kWarning,
       "hot-loop kernel re-loads a distribution array beyond the 19 "
       "populations per point"},
      {"MT004", "non-fused-update", Severity::kWarning,
       "stream-only and collide-only kernels launched from one "
       "translation unit: non-fused update doubles write-allocate "
       "traffic"},
      {"MT005", "halo-payload-mismatch", Severity::kError,
       "halo pack/unpack payload disagrees with "
       "halo_bytes_per_surface_point"},
      {"MT006", "dialect-divergence", Severity::kError,
       "distribution bytes/point differ between dialects for the same "
       "kernel"},
  };
  return rules;
}

std::vector<Diagnostic> audit_traffic(
    const std::string& dialect_label,
    const std::vector<KernelProfile>& profiles,
    const perf::ModelParams& params) {
  std::vector<Diagnostic> out;
  for (const KernelProfile& p : profiles) {
    const std::string where = dialect_label.empty()
                                  ? p.kernel
                                  : dialect_label + "/" + p.kernel;
    if (is_hot_loop_kernel(p.kernel)) {
      // MT001: the hot loop's streamed distribution traffic must match
      // the model charge for its propagation pattern.  Pull kernels make
      // two array passes (19 loads of f_in + 19 stores of f_out =
      // params.bytes_per_point); in-place kernels (the AA pair and the
      // collide-only ablation) make one pass over their single array, so
      // they are charged the single-pass fraction of the same parameter.
      const lbm::Propagation pattern =
          p.in_place_distribution_update() ? lbm::Propagation::kAAInPlace
                                           : lbm::Propagation::kPullSoA;
      const double expected =
          params.bytes_per_point *
          (lbm::propagation_passes(pattern) /
           lbm::propagation_passes(lbm::Propagation::kPullSoA));
      const double derived = p.streamed_distribution_bytes_per_point();
      if (differs(derived, expected)) {
        out.push_back(make(
            "MT001", p.file, p.line,
            where + ": derived " + fmt(derived) +
                " distribution B/point, model charges " + fmt(expected) +
                " for a " + lbm::propagation_name(pattern) + " kernel",
            "make the kernel move exactly 19 populations of 8 bytes per "
            "array pass per point, or update ModelParams and Figs. 5-6"));
      }
      // MT002: AoS layout serializes the coalesced hot loop.
      if (p.touches_stride(ArrayRole::kDistribution, StrideClass::kAoS)) {
        out.push_back(make(
            "MT002", p.file, p.line,
            where + ": distribution accessed with AoS stride (f[i*kQ+q]) "
                    "on the hot loop",
            "index distributions as f[q*n+i] (SoA) so consecutive threads "
            "touch consecutive addresses"));
      }
      // MT003: more than one load of the same distribution array per
      // population means the kernel refetches what registers already hold.
      // Role-gated: a local stack array named `f` is register-class and
      // never counts.
      std::map<std::string, double> dist_loads;
      for (const ArrayAccess& a : p.accesses)
        if (a.role == ArrayRole::kDistribution && a.dir == AccessDir::kLoad)
          dist_loads[a.array] += a.count_per_point;
      for (const auto& [array, loads] : dist_loads) {
        if (loads > static_cast<double>(lbm::kQ) + kTolerance) {
          out.push_back(make(
              "MT003", p.file, p.line,
              where + ": " + fmt(loads) + " loads/point of " + array +
                  " exceed the " + fmt(lbm::kQ) + " populations",
              "cache gathered populations in a stack array instead of "
              "re-loading device memory"));
        }
      }
    }
    // MT005: each halo value crossing a face is one 8-byte double; the
    // model charges 5 of them per surface point.
    const bool pack = p.kernel.find("PackHalo") != std::string::npos;
    const bool unpack = p.kernel.find("UnpackHalo") != std::string::npos;
    if (pack || unpack) {
      const double payload =
          pack ? p.bytes_per_point(ArrayRole::kHaloBuffer, AccessDir::kStore)
               : p.bytes_per_point(ArrayRole::kHaloBuffer, AccessDir::kLoad);
      const double per_surface_point =
          payload * static_cast<double>(kHaloValuesPerSurfacePoint);
      if (differs(per_surface_point, params.halo_bytes_per_surface_point)) {
        out.push_back(make(
            "MT005", p.file, p.line,
            where + ": " + fmt(payload) + " halo payload B/value => " +
                fmt(per_surface_point) + " B/surface point, model charges " +
                fmt(params.halo_bytes_per_surface_point),
            "pack exactly one 8-byte double per crossing population, or "
            "update halo_bytes_per_surface_point"));
      }
    }
  }
  return out;
}

std::vector<Diagnostic> audit_launch_fusion(
    const std::vector<FluxSource>& sources) {
  std::vector<Diagnostic> out;
  for (const FluxSource& source : sources) {
    // The definitions themselves live in kernels.h; only launch sites
    // count as a fusion hazard.
    if (source.file.find("kernels.h") != std::string::npos) continue;
    const std::size_t stream = source.content.find("StreamOnlyKernel");
    const std::size_t collide = source.content.find("CollideOnlyKernel");
    if (stream == std::string::npos || collide == std::string::npos) continue;
    const std::size_t second = std::max(stream, collide);
    const int line =
        1 + static_cast<int>(std::count(
                source.content.begin(),
                source.content.begin() + static_cast<std::ptrdiff_t>(second),
                '\n'));
    out.push_back(make(
        "MT004", source.file, line,
        "StreamOnlyKernel and CollideOnlyKernel launched from one "
        "translation unit: the intermediate field is written, re-loaded "
        "and re-written (3*19*8 extra B/point vs the fused kernel)",
        "launch StreamCollideKernel instead of the split pair on the hot "
        "path"));
  }
  return out;
}

std::vector<Diagnostic> audit_dialect_divergence(
    const std::vector<std::pair<std::string, std::vector<KernelProfile>>>&
        dialects) {
  std::vector<Diagnostic> out;
  // kernel -> (first dialect seen, its bytes/point)
  std::map<std::string, std::pair<std::string, double>> reference;
  for (const auto& [label, profiles] : dialects) {
    for (const KernelProfile& p : profiles) {
      const double bytes = p.streamed_distribution_bytes_per_point();
      const auto it = reference.find(p.kernel);
      if (it == reference.end()) {
        reference[p.kernel] = {label, bytes};
        continue;
      }
      if (differs(bytes, it->second.second)) {
        out.push_back(make(
            "MT006", p.file, p.line,
            p.kernel + ": " + label + " moves " + fmt(bytes) +
                " distribution B/point but " + it->second.first + " moves " +
                fmt(it->second.second),
            "the four dialects must implement the same traffic; fix the "
            "divergent port"));
      }
    }
  }
  return out;
}

std::vector<Diagnostic> audit_corpus_traffic(port::CorpusDialect dialect,
                                             const perf::ModelParams& params) {
  const std::string label = dialect_label(dialect);
  std::vector<Diagnostic> out =
      audit_traffic(label, extract_dialect_profiles(dialect), params);
  std::vector<FluxSource> launch_sources;
  for (const std::string& name : port::corpus_files())
    launch_sources.push_back(FluxSource{
        label + "/" + name, port::read_corpus_file(dialect, name)});
  std::vector<Diagnostic> fusion = audit_launch_fusion(launch_sources);
  out.insert(out.end(), fusion.begin(), fusion.end());
  sort_diagnostics(out);
  return out;
}

std::vector<Diagnostic> audit_all_corpora(const perf::ModelParams& params) {
  std::vector<Diagnostic> out;
  std::vector<std::pair<std::string, std::vector<KernelProfile>>> per_dialect;
  for (const port::CorpusDialect dialect :
       {port::CorpusDialect::kCudax, port::CorpusDialect::kHipx,
        port::CorpusDialect::kSyclx, port::CorpusDialect::kKokkosx}) {
    std::vector<Diagnostic> one = audit_corpus_traffic(dialect, params);
    out.insert(out.end(), one.begin(), one.end());
    per_dialect.emplace_back(dialect_label(dialect),
                             extract_dialect_profiles(dialect));
  }
  std::vector<Diagnostic> divergence = audit_dialect_divergence(per_dialect);
  out.insert(out.end(), divergence.begin(), divergence.end());
  sort_diagnostics(out);
  return out;
}

std::string traffic_audit_json(const perf::ModelParams& params) {
  std::ostringstream out;
  out << "{\"version\": \"hemo-flux/1\", \"model\": {\"bytes_per_point\": "
      << fmt(params.bytes_per_point) << ", \"aa_bytes_per_point\": "
      << fmt(lbm::propagation_bytes_per_point(lbm::Propagation::kAAInPlace))
      << ", \"halo_bytes_per_surface_point\": "
      << fmt(params.halo_bytes_per_surface_point) << "}, \"dialects\": [";
  bool first_dialect = true;
  for (const port::CorpusDialect dialect :
       {port::CorpusDialect::kCudax, port::CorpusDialect::kHipx,
        port::CorpusDialect::kSyclx, port::CorpusDialect::kKokkosx}) {
    if (!first_dialect) out << ", ";
    first_dialect = false;
    out << "{\"dialect\": \"" << dialect_label(dialect)
        << "\", \"kernels\": [";
    const std::vector<KernelProfile> profiles =
        extract_dialect_profiles(dialect);
    bool first_kernel = true;
    for (const KernelProfile& p : profiles) {
      if (!first_kernel) out << ", ";
      first_kernel = false;
      out << "{\"kernel\": \"" << json_escape(p.kernel) << "\", \"file\": \""
          << json_escape(p.file) << "\", \"line\": " << p.line
          << ", \"hot_loop\": " << (is_hot_loop_kernel(p.kernel) ? "true"
                                                                 : "false")
          << ", \"propagation\": \""
          << (p.in_place_distribution_update()
                  ? lbm::propagation_name(lbm::Propagation::kAAInPlace)
                  : lbm::propagation_name(lbm::Propagation::kPullSoA))
          << "\", \"distribution_bytes_per_point\": "
          << fmt(p.distribution_bytes_per_point())
          << ", \"streamed_distribution_bytes_per_point\": "
          << fmt(p.streamed_distribution_bytes_per_point())
          << ", \"total_bytes_per_point\": " << fmt(p.total_bytes_per_point())
          << ", \"flops_per_point\": " << fmt(p.flops_per_point)
          << ", \"accesses\": [";
      bool first_access = true;
      for (const ArrayAccess& a : p.accesses) {
        if (!first_access) out << ", ";
        first_access = false;
        out << "{\"array\": \"" << json_escape(a.array) << "\", \"role\": \""
            << role_name(a.role) << "\", \"dir\": \"" << dir_name(a.dir)
            << "\", \"stride\": \"" << stride_name(a.stride)
            << "\", \"count_per_point\": " << fmt(a.count_per_point)
            << ", \"elem_bytes\": " << a.elem_bytes << "}";
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace hemo::analysis
