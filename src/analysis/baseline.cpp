#include "analysis/baseline.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

namespace hemo::analysis {

namespace {

using Key = std::tuple<std::string, std::string, std::string>;

/// Baseline lines are single-line records; a message containing a tab or
/// newline (none do today) is flattened so the format stays parseable.
std::string flatten(std::string s) {
  for (char& c : s)
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  return s;
}

/// Both sides of the match go through flatten() so a finding whose
/// message was flattened on write still cancels on read.
Key key_of(const Diagnostic& d) {
  return {flatten(d.rule_id), flatten(d.file), flatten(d.message)};
}

}  // namespace

std::string write_baseline(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> lines;
  lines.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics)
    lines.push_back(flatten(d.rule_id) + "\t" + flatten(d.file) + "\t" +
                    flatten(d.message));
  std::sort(lines.begin(), lines.end());
  std::ostringstream out;
  out << "# hemo-lint baseline v1: rule<TAB>file<TAB>message, one "
         "suppressed finding per line\n";
  for (const std::string& line : lines) out << line << "\n";
  return out.str();
}

std::vector<Diagnostic> parse_baseline(const std::string& text) {
  std::vector<Diagnostic> entries;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t tab1 = line.find('\t');
    if (tab1 == std::string::npos) continue;
    const std::size_t tab2 = line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) continue;
    Diagnostic d;
    d.rule_id = line.substr(0, tab1);
    d.file = line.substr(tab1 + 1, tab2 - tab1 - 1);
    d.message = line.substr(tab2 + 1);
    entries.push_back(std::move(d));
  }
  return entries;
}

std::vector<Diagnostic> apply_baseline(
    const std::vector<Diagnostic>& diagnostics,
    const std::vector<Diagnostic>& baseline) {
  std::map<Key, int> budget;
  for (const Diagnostic& d : baseline) ++budget[key_of(d)];
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics) {
    const auto it = budget.find(key_of(d));
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.push_back(d);
  }
  return out;
}

}  // namespace hemo::analysis
