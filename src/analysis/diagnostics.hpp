#pragma once
// Diagnostic framework shared by the two hemo-lint engines: the
// portability linter over the porting-study corpus (rules.hpp) and the
// sparse-lattice consistency checker (lattice_check.hpp).  It generalizes
// the Table-2 warning taxonomy of src/port/warnings.hpp into a standalone
// structure that reporters (report.hpp) can render as text or JSON.

#include <map>
#include <string>
#include <vector>

namespace hemo::analysis {

enum class Severity {
  kNote = 0,     // stylistic / informational
  kWarning = 1,  // likely to need manual attention when porting
  kError = 2,    // correctness hazard (race, OOB, dropped functionality)
};

constexpr const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

/// Catalog metadata for one rule, shared by every rule family (HL, LC,
/// RS, MT, CC) so the registry (registry.hpp) can enumerate them
/// uniformly.
struct RuleInfo {
  std::string id;        // "MT001", "CC003", ...
  std::string name;      // short kebab-case handle
  Severity severity = Severity::kWarning;
  std::string summary;   // one-line description for --list-rules
};

struct Diagnostic {
  std::string rule_id;    // "HL###" (portability) or "LC###" (lattice)
  Severity severity = Severity::kWarning;
  std::string file;       // source file, or a lattice element description
  int line = 0;           // 1-based source line; 0 when not line-oriented
  std::string message;
  std::string fixit_hint; // optional suggested remediation

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Stable presentation order: (file, line, rule_id, message).
void sort_diagnostics(std::vector<Diagnostic>& diagnostics);

/// Aggregations used by the reporters and the CLI.
std::map<std::string, int> count_by_rule(const std::vector<Diagnostic>& ds);
std::map<std::string, int> count_by_file(const std::vector<Diagnostic>& ds);
std::map<Severity, int> count_by_severity(const std::vector<Diagnostic>& ds);

/// Number of diagnostics at exactly the given severity.
int count_at(const std::vector<Diagnostic>& ds, Severity s);

}  // namespace hemo::analysis
