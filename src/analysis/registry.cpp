#include "analysis/registry.hpp"

#include <set>

#include "analysis/concurrency.hpp"
#include "analysis/flux_rules.hpp"
#include "analysis/rules.hpp"

namespace hemo::analysis {

namespace {

/// LC and RS rules are emitted at their check sites (lattice_check.cpp,
/// DistributedSolver::validate, the resilience health guards) rather
/// than through a rule table, so their catalog rows live here.  Keep in
/// sync with the doc blocks in lattice_check.hpp and resilience/policy.hpp;
/// the registry integrity test cross-checks DESIGN.md.
const std::vector<RuleInfo>& lattice_rules() {
  static const std::vector<RuleInfo> rules = {
      {"LC001", "oob-neighbor", Severity::kError,
       "adjacency index outside [0, n)"},
      {"LC002", "rest-link-broken", Severity::kError,
       "neighbor(0, i) != i"},
      {"LC003", "duplicate-write-target", Severity::kError,
       "push-scheme write-write race"},
      {"LC004", "non-involutive-adjacency", Severity::kError,
       "i->j without matching j->i"},
      {"LC005", "inlet-unreachable", Severity::kWarning,
       "fluid cells the inlet cannot feed"},
      {"LC006", "owner-out-of-range", Severity::kError,
       "partition owner not in [0, R)"},
      {"LC007", "empty-rank", Severity::kWarning,
       "a rank owns zero points"},
      {"LC008", "halo-plan-mismatch", Severity::kError,
       "halo plan disagrees with the lattice"},
      {"LC009", "exchange-slot-overlap", Severity::kError,
       "halo pack/unpack slots overlap an interior update"},
      {"LC010", "unauditable-unpack-slot", Severity::kWarning,
       "a (q, slot) pair is unpacked by more than one exchange"},
      {"LC011", "halo-endpoint-not-in-partition", Severity::kError,
       "a halo message names a rank the partition does not know"},
  };
  return rules;
}

const std::vector<RuleInfo>& resilience_rules() {
  static const std::vector<RuleInfo> rules = {
      {"RS001", "nonfinite-distribution", Severity::kError,
       "non-finite distribution value"},
      {"RS002", "mass-drift", Severity::kError,
       "global mass drift beyond tolerance"},
      {"RS003", "velocity-ceiling", Severity::kError,
       "velocity-magnitude ceiling exceeded"},
      {"RS004", "halo-traffic-mismatch", Severity::kWarning,
       "halo traffic disagrees with the plan"},
      {"RS005", "rank-dead-domain-shrunk", Severity::kWarning,
       "rank declared dead; domain shrunk onto the survivors"},
      {"RS006", "silent-data-corruption", Severity::kError,
       "silent data corruption detected in a tile"},
  };
  return rules;
}

}  // namespace

std::vector<RuleInfo> rule_registry() {
  std::vector<RuleInfo> all;
  for (const LintRule& rule : lint_rules())
    all.push_back(RuleInfo{rule.id, rule.name, rule.severity, rule.summary});
  for (const RuleInfo& rule : lattice_rules()) all.push_back(rule);
  for (const RuleInfo& rule : resilience_rules()) all.push_back(rule);
  for (const RuleInfo& rule : flux_rules()) all.push_back(rule);
  for (const RuleInfo& rule : concurrency_rules()) all.push_back(rule);
  return all;
}

std::vector<std::string> rule_ids() {
  std::vector<std::string> ids;
  for (const RuleInfo& rule : rule_registry()) ids.push_back(rule.id);
  return ids;
}

bool registry_ids_unique() {
  std::set<std::string> seen;
  for (const std::string& id : rule_ids())
    if (!seen.insert(id).second) return false;
  return true;
}

RuleInfo find_rule(const std::string& id) {
  for (const RuleInfo& rule : rule_registry())
    if (rule.id == id) return rule;
  return RuleInfo{};
}

}  // namespace hemo::analysis
