#include "analysis/flux_extract.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <regex>
#include <sstream>
#include <tuple>

#include "base/contracts.hpp"

#ifndef HEMO_REPO_DIR
#error "HEMO_REPO_DIR must be defined by the build system"
#endif

namespace hemo::analysis {

namespace {

// ---------------------------------------------------------------------------
// Text utilities.
// ---------------------------------------------------------------------------

/// Comments and string/char literals blanked out (newlines preserved), so
/// braces and subscripts inside them never confuse the walk.
std::string strip_comments(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') state = State::kLine;
        else if (c == '/' && next == '*') state = State::kBlock;
        else if (c == '"') state = State::kString;
        else if (c == '\'') state = State::kChar;
        if (state != State::kCode && c != '\n') out[i] = ' ';
        break;
      case State::kLine:
        if (c == '\n') state = State::kCode;
        else out[i] = ' ';
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') { out[i + 1] = ' '; ++i; }
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') { out[i + 1] = ' '; ++i; }
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

int line_at(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos, text.size())),
                            '\n'));
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void skip_ws(const std::string& text, std::size_t& pos, std::size_t end) {
  while (pos < end && std::isspace(static_cast<unsigned char>(text[pos])))
    ++pos;
}

/// Position one past the delimiter matching text[pos] ('(' or '{' or '[').
std::size_t match_delim(const std::string& text, std::size_t pos) {
  const char open = text[pos];
  const char close = open == '(' ? ')' : open == '{' ? '}' : ']';
  int depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    else if (text[i] == close && --depth == 0) return i + 1;
  }
  return text.size();
}

bool word_at(const std::string& text, std::size_t pos, std::size_t end,
             const char* word) {
  const std::size_t len = std::strlen(word);
  if (pos + len > end) return false;
  if (text.compare(pos, len, word) != 0) return false;
  if (pos + len < end && ident_char(text[pos + len])) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  return true;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Splits on commas at paren/bracket/brace depth zero.
std::vector<std::string> split_top_level(const std::string& text, char sep) {
  std::vector<std::string> parts;
  int depth = 0;
  std::string current;
  for (const char c : text) {
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == sep && depth == 0) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!trim(current).empty()) parts.push_back(current);
  return parts;
}

// ---------------------------------------------------------------------------
// Symbols.
// ---------------------------------------------------------------------------

enum class SymKind { kDevice, kKernelArgs, kLocalArray, kConstTable, kScalar };

struct Sym {
  SymKind kind = SymKind::kScalar;
  ArrayRole role = ArrayRole::kScratch;
  int elem_bytes = 8;
  std::string canonical;  // name reported in the IR
};

using SymTab = std::map<std::string, Sym>;

ArrayRole role_for_name(const std::string& name) {
  if (name == "f_in" || name == "f_out" || name == "f" || name == "f_old" ||
      name == "f_new")
    return ArrayRole::kDistribution;
  if (name == "adjacency") return ArrayRole::kAdjacency;
  if (name == "node_type") return ArrayRole::kNodeType;
  if (name == "indices") return ArrayRole::kIndexList;
  if (name == "send" || name == "recv") return ArrayRole::kHaloBuffer;
  if (name == "kWeights" || name == "kC") return ArrayRole::kConstantTable;
  return ArrayRole::kScratch;
}

int elem_bytes_for_type(const std::string& type) {
  if (type.find("double") != std::string::npos) return 8;
  if (type.find("float") != std::string::npos) return 4;
  if (type.find("int64") != std::string::npos) return 8;
  if (type.find("PointIndex") != std::string::npos) return 8;
  if (type.find("uint8") != std::string::npos) return 1;
  if (type.find("char") != std::string::npos) return 1;
  if (type.find("uint32") != std::string::npos) return 4;
  return 8;
}

Sym device_sym(const std::string& name, const std::string& type) {
  Sym sym;
  sym.role = role_for_name(name);
  sym.kind = sym.role == ArrayRole::kConstantTable ? SymKind::kConstTable
                                                   : SymKind::kDevice;
  sym.elem_bytes = elem_bytes_for_type(type);
  sym.canonical = name;
  return sym;
}

/// The KernelArgs ABI (lbm/kernels.hpp): any KernelArgs-typed variable
/// exposes these array fields, whatever its spelling at the access site.
const SymTab& kernel_args_fields() {
  static const SymTab fields = [] {
    SymTab t;
    t["f_in"] = Sym{SymKind::kDevice, ArrayRole::kDistribution, 8, "f_in"};
    t["f_out"] = Sym{SymKind::kDevice, ArrayRole::kDistribution, 8, "f_out"};
    t["f"] = Sym{SymKind::kDevice, ArrayRole::kDistribution, 8, "f"};
    t["adjacency"] = Sym{SymKind::kDevice, ArrayRole::kAdjacency, 8,
                         "adjacency"};
    t["node_type"] = Sym{SymKind::kDevice, ArrayRole::kNodeType, 1,
                         "node_type"};
    return t;
  }();
  return fields;
}

/// Per-call flop cost of leaf functions the walk does not inline (their
/// bodies touch only lattice constants, never device memory).
const std::map<std::string, double>& intrinsic_flops() {
  static const std::map<std::string, double> table = {
      {"equilibrium", 12.0}, {"c", 0.0}, {"opposite", 0.0},
      {"pulsatile_scale", 6.0},
  };
  return table;
}

// ---------------------------------------------------------------------------
// Definitions parsed from sources.
// ---------------------------------------------------------------------------

struct Param {
  std::string name;
  Sym sym;            // default binding when the call site gives none
  bool arrayish = false;
};

struct FunctionDef {
  std::string name;
  std::vector<Param> params;
  std::string body;
  std::string file;
  int line = 0;
};

struct FunctorDef {
  std::string name;
  SymTab members;
  std::string body;
  std::string file;
  int line = 0;
};

using Registry = std::map<std::string, FunctionDef>;

Param parse_param(const std::string& decl_in) {
  Param p;
  const std::string decl = trim(decl_in);
  if (decl.empty()) return p;
  if (decl.find("KernelArgs") != std::string::npos) {
    p.sym.kind = SymKind::kKernelArgs;
    p.arrayish = true;
  } else if (decl.find('*') != std::string::npos ||
             decl.find('[') != std::string::npos) {
    p.arrayish = true;
  }
  // Name: the last identifier before any '['.
  const std::string head = decl.substr(0, decl.find('['));
  static const std::regex kLastIdent(R"(([A-Za-z_]\w*)\s*$)");
  std::smatch m;
  if (std::regex_search(head, m, kLastIdent)) p.name = m[1].str();
  if (p.arrayish && p.sym.kind != SymKind::kKernelArgs) {
    // Array-typed value params ("double f[kQ]") are caller stack arrays
    // unless the call site binds device memory; pointers default to the
    // device role their name implies.
    if (decl.find('[') != std::string::npos &&
        decl.find('*') == std::string::npos) {
      p.sym.kind = SymKind::kLocalArray;
      p.sym.role = ArrayRole::kLocal;
    } else {
      p.sym = device_sym(p.name, decl);
    }
    p.sym.canonical = p.name;
  }
  return p;
}

/// Member declarations of a functor, from the struct text preceding
/// operator(): raw pointers become device arrays, KernelArgs members the
/// ABI bundle, everything else launch scalars.
SymTab parse_members(const std::string& text) {
  SymTab members;
  for (const std::string& stmt_raw : split_top_level(text, ';')) {
    const std::string stmt = trim(stmt_raw);
    if (stmt.empty()) continue;
    static const std::regex kPointer(
        R"(^(?:const\s+)?([\w:]+)\s*\*\s*(\w+)(\s*=.*)?$)");
    static const std::regex kValue(
        R"(^(?:const\s+)?([\w:<>]+)\s+(\w+)(\s*=.*)?$)");
    std::smatch m;
    if (std::regex_match(stmt, m, kPointer)) {
      members[m[2].str()] = device_sym(m[2].str(), m[1].str());
    } else if (std::regex_match(stmt, m, kValue)) {
      if (m[1].str().find("KernelArgs") != std::string::npos) {
        Sym sym;
        sym.kind = SymKind::kKernelArgs;
        sym.canonical = m[2].str();
        members[m[2].str()] = sym;
      }
      // Scalars (n, omega, ...) resolve to "not an array": no entry.
    }
  }
  return members;
}

void parse_file(const FluxSource& source, Registry* registry,
                std::vector<FunctorDef>* functors) {
  const std::string text = strip_comments(source.content);

  // Free inline functions.
  static const std::regex kInlineFn(R"(\binline\s+[\w:<>&\s\*]*?(\w+)\s*\()");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kInlineFn);
       it != std::sregex_iterator(); ++it) {
    const std::size_t paren = static_cast<std::size_t>(it->position(1)) +
                              it->length(1);
    std::size_t open = text.find('(', paren);
    if (open == std::string::npos) continue;
    const std::size_t close = match_delim(text, open);
    std::size_t brace = close;
    skip_ws(text, brace, text.size());
    // Skip qualifiers between ) and { (e.g. "const", "noexcept").
    while (brace < text.size() && text[brace] != '{' && text[brace] != ';' &&
           text[brace] != '(')
      ++brace;
    if (brace >= text.size() || text[brace] != '{') continue;
    FunctionDef fn;
    fn.name = (*it)[1].str();
    fn.file = source.file;
    fn.line = line_at(text, static_cast<std::size_t>(it->position(0)));
    for (const std::string& param :
         split_top_level(text.substr(open + 1, close - open - 2), ','))
      fn.params.push_back(parse_param(param));
    fn.body = text.substr(brace + 1, match_delim(text, brace) - brace - 2);
    (*registry)[fn.name] = std::move(fn);
  }

  // Kernel functors: structs with an operator().
  static const std::regex kStruct(R"(\bstruct\s+(\w+)\s*\{)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kStruct);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position(0)) + it->length(0) - 1;
    const std::size_t close = match_delim(text, open);
    const std::string body = text.substr(open + 1, close - open - 2);
    const std::size_t op = body.find("operator()");
    if (op == std::string::npos) continue;
    FunctorDef functor;
    functor.name = (*it)[1].str();
    functor.file = source.file;
    functor.line = line_at(text, static_cast<std::size_t>(it->position(0)));
    functor.members = parse_members(body.substr(0, op));
    std::size_t params_open = body.find('(', op + 10);
    if (params_open == std::string::npos) continue;
    const std::size_t params_close = match_delim(body, params_open);
    std::size_t brace = params_close;
    while (brace < body.size() && body[brace] != '{') ++brace;
    if (brace >= body.size()) continue;
    functor.body = body.substr(brace + 1, match_delim(body, brace) - brace - 2);
    functors->push_back(std::move(functor));
  }
}

// ---------------------------------------------------------------------------
// Structure tree: loops, branch alternatives, statements.
// ---------------------------------------------------------------------------

struct Node {
  enum Kind { kSeq, kLoop, kBranch, kStmt } kind = kSeq;
  std::vector<std::unique_ptr<Node>> children;  // Seq / Loop body / Branch alts
  double factor = 1.0;                          // kLoop trip count
  std::string text;                             // kStmt statement text
};

using NodePtr = std::unique_ptr<Node>;

NodePtr make_node(Node::Kind kind) {
  auto node = std::make_unique<Node>();
  node->kind = kind;
  return node;
}

double loop_factor(const std::string& header) {
  const std::vector<std::string> parts = split_top_level(header, ';');
  if (parts.size() < 2) return 1.0;
  static const std::regex kBound(R"([<>]=?\s*([\w.]+))");
  std::smatch m;
  if (!std::regex_search(parts[1], m, kBound)) return 1.0;
  const std::string bound = m[1].str();
  if (bound == "kQ") return 19.0;
  if (!bound.empty() &&
      std::all_of(bound.begin(), bound.end(),
                  [](char c) { return std::isdigit(static_cast<unsigned char>(c)); }))
    return std::stod(bound);
  return 1.0;  // symbolic bound (per-point kernels do not loop over n)
}

bool ends_with_jump(const Node& node) {
  if (node.kind == Node::kStmt) {
    const std::string t = trim(node.text);
    return t.rfind("continue", 0) == 0 || t.rfind("return", 0) == 0 ||
           t.rfind("break", 0) == 0;
  }
  if (!node.children.empty())
    return ends_with_jump(*node.children.back());
  return false;
}

class BlockParser {
 public:
  explicit BlockParser(const std::string& text) : text_(text) {}

  NodePtr parse() { return parse_block(0, text_.size()); }

 private:
  const std::string& text_;

  /// One statement: everything up to the first ';' at local depth zero
  /// (lambdas and nested calls keep their ';' and ',' inside).
  std::string read_statement(std::size_t& pos, std::size_t end) {
    const std::size_t start = pos;
    int depth = 0;
    while (pos < end) {
      const char c = text_[pos];
      if (c == '(' || c == '[' || c == '{') ++depth;
      else if (c == ')' || c == ']' || c == '}') --depth;
      else if (c == ';' && depth == 0) {
        ++pos;
        return text_.substr(start, pos - start - 1);
      }
      ++pos;
    }
    return text_.substr(start, end - start);
  }

  /// Body of an if/for: a braced block, or a single statement.
  NodePtr read_body(std::size_t& pos, std::size_t end) {
    skip_ws(text_, pos, end);
    if (pos < end && text_[pos] == '{') {
      const std::size_t close = match_delim(text_, pos);
      NodePtr block = parse_block(pos + 1, close - 1);
      pos = close;
      return block;
    }
    if (word_at(text_, pos, end, "for")) return parse_for(pos, end);
    auto stmt = make_node(Node::kStmt);
    stmt->text = read_statement(pos, end);
    auto seq = make_node(Node::kSeq);
    seq->children.push_back(std::move(stmt));
    return seq;
  }

  NodePtr parse_for(std::size_t& pos, std::size_t end) {
    pos += 3;  // "for"
    skip_ws(text_, pos, end);
    HEMO_EXPECTS(pos < end && text_[pos] == '(');
    const std::size_t close = match_delim(text_, pos);
    const std::string header = text_.substr(pos + 1, close - pos - 2);
    pos = close;
    auto loop = make_node(Node::kLoop);
    loop->factor = loop_factor(header);
    loop->children.push_back(read_body(pos, end));
    return loop;
  }

  NodePtr parse_block(std::size_t pos, std::size_t end) {
    auto seq = make_node(Node::kSeq);
    while (true) {
      skip_ws(text_, pos, end);
      if (pos >= end) break;
      if (text_[pos] == '{') {  // bare scope
        const std::size_t close = match_delim(text_, pos);
        seq->children.push_back(parse_block(pos + 1, close - 1));
        pos = close;
        continue;
      }
      if (word_at(text_, pos, end, "for")) {
        seq->children.push_back(parse_for(pos, end));
        continue;
      }
      if (word_at(text_, pos, end, "if")) {
        auto branch = make_node(Node::kBranch);
        bool has_else = false;
        while (true) {
          // At an "if": consume the condition, then its body.  Condition
          // subscripts are real loads; charge them as a statement ahead
          // of the branch (an upper bound for else-if chains, matching
          // the branch-max philosophy).
          pos += 2;
          skip_ws(text_, pos, end);
          HEMO_EXPECTS(pos < end && text_[pos] == '(');
          const std::size_t cond_open = pos;
          pos = match_delim(text_, pos);
          auto cond = make_node(Node::kStmt);
          cond->text = text_.substr(cond_open + 1, pos - cond_open - 2);
          seq->children.push_back(std::move(cond));
          branch->children.push_back(read_body(pos, end));
          const std::size_t save = pos;
          skip_ws(text_, pos, end);
          if (!word_at(text_, pos, end, "else")) {
            pos = save;
            break;
          }
          pos += 4;
          skip_ws(text_, pos, end);
          if (word_at(text_, pos, end, "if")) continue;
          branch->children.push_back(read_body(pos, end));
          has_else = true;
          break;
        }
        if (!has_else) {
          if (ends_with_jump(*branch->children.back())) {
            // `if (...) { ...; continue; }`: the rest of this block is
            // the implicit else branch.
            branch->children.push_back(parse_block(pos, end));
            seq->children.push_back(std::move(branch));
            return seq;
          }
          branch->children.push_back(make_node(Node::kSeq));
        }
        seq->children.push_back(std::move(branch));
        continue;
      }
      auto stmt = make_node(Node::kStmt);
      stmt->text = read_statement(pos, end);
      if (!trim(stmt->text).empty()) seq->children.push_back(std::move(stmt));
    }
    return seq;
  }
};

// ---------------------------------------------------------------------------
// Evaluation: fold the tree into per-array access counts.
// ---------------------------------------------------------------------------

struct AccMeta {
  ArrayRole role = ArrayRole::kScratch;
  int elem_bytes = 8;
};

struct Counts {
  // (array, role, dir, stride) -> expected accesses per point.  Role is
  // part of the key so a stack local that shadows a device array's name
  // (the AA kernels' `double f[kQ]` beside args.f) keeps its own bucket
  // instead of being charged as device distribution traffic.
  std::map<std::tuple<std::string, int, int, int>, double> acc;
  std::map<std::pair<std::string, int>, AccMeta> meta;
  double flops = 0.0;

  void add(const std::string& array, AccessDir dir, StrideClass stride,
           double count, ArrayRole role, int elem_bytes) {
    acc[{array, static_cast<int>(role), static_cast<int>(dir),
         static_cast<int>(stride)}] += count;
    meta[{array, static_cast<int>(role)}] = AccMeta{role, elem_bytes};
  }

  void merge_sum(const Counts& other) {
    for (const auto& [key, count] : other.acc) acc[key] += count;
    for (const auto& [key, m] : other.meta) meta[key] = m;
    flops += other.flops;
  }

  void scale(double factor) {
    for (auto& [key, count] : acc) count *= factor;
    flops *= factor;
  }

  /// Branch merge: element-wise maximum (the upper bound the model
  /// charges; a branch can only realize one alternative per point).
  static Counts branch_max(const std::vector<Counts>& alts) {
    Counts out;
    for (const Counts& alt : alts) {
      for (const auto& [key, count] : alt.acc) {
        auto it = out.acc.find(key);
        if (it == out.acc.end()) out.acc[key] = count;
        else it->second = std::max(it->second, count);
      }
      for (const auto& [key, m] : alt.meta) out.meta[key] = m;
      out.flops = std::max(out.flops, alt.flops);
    }
    return out;
  }
};

StrideClass classify_stride(std::string index) {
  static const std::regex kCast(R"(static_cast<[^<>]*>)");
  index = std::regex_replace(index, kCast, "");
  if (index.find('[') != std::string::npos) return StrideClass::kGather;
  static const std::regex kAoS(R"(\*\s*kQ\b|\bkQ\s*\*)");
  if (std::regex_search(index, kAoS)) return StrideClass::kAoS;
  static const std::regex kSoA(R"(\*\s*(?:[A-Za-z_]\w*(?:\.|->))?n\b|\bn\s*\*)");
  if (std::regex_search(index, kSoA)) return StrideClass::kSoA;
  return StrideClass::kUnit;
}

class Evaluator {
 public:
  Evaluator(const Registry& registry) : registry_(registry) {}

  Counts eval(const Node& node, SymTab& syms, int depth) const {
    switch (node.kind) {
      case Node::kSeq: {
        Counts out;
        for (const NodePtr& child : node.children)
          out.merge_sum(eval(*child, syms, depth));
        return out;
      }
      case Node::kLoop: {
        Counts out = eval(*node.children.front(), syms, depth);
        out.scale(node.factor);
        return out;
      }
      case Node::kBranch: {
        std::vector<Counts> alts;
        for (const NodePtr& child : node.children) {
          SymTab branch_syms = syms;  // branch-scoped declarations
          alts.push_back(eval(*child, branch_syms, depth));
        }
        return Counts::branch_max(alts);
      }
      case Node::kStmt:
        return eval_statement(node.text, syms, depth);
    }
    return Counts{};
  }

 private:
  const Registry& registry_;

  /// Resolves a dotted access base ("a.f_in", "args", "f") to a symbol.
  const Sym* resolve(const std::string& base, SymTab& syms,
                     std::string* canonical) const {
    static const std::regex kSep(R"(\.|->)");
    std::sregex_token_iterator it(base.begin(), base.end(), kSep, -1), sep_end;
    std::vector<std::string> parts(it, sep_end);
    if (parts.empty()) return nullptr;
    const auto first = syms.find(parts.front());
    if (first != syms.end() && first->second.kind == SymKind::kKernelArgs &&
        parts.size() > 1) {
      const SymTab& fields = kernel_args_fields();
      const auto field = fields.find(parts.back());
      if (field == fields.end()) return nullptr;  // scalar field (n, omega)
      *canonical = field->second.canonical;
      return &field->second;
    }
    if (first != syms.end() && parts.size() == 1 &&
        first->second.kind != SymKind::kScalar &&
        first->second.kind != SymKind::kKernelArgs) {
      *canonical = first->second.canonical.empty() ? parts.front()
                                                   : first->second.canonical;
      return &first->second;
    }
    // Unknown subscripted name: register it as an implicit device array so
    // fixture kernels need no boilerplate declarations.
    if (parts.size() == 1 && first == syms.end()) {
      Sym sym = device_sym(parts.front(), "double");
      auto [slot, inserted] = syms.emplace(parts.front(), sym);
      (void)inserted;
      *canonical = parts.front();
      return &slot->second;
    }
    return nullptr;
  }

  Counts eval_statement(const std::string& raw, SymTab& syms,
                        int depth) const {
    Counts out;
    const std::string stmt = trim(raw);
    if (stmt.empty() || stmt == "continue" || stmt == "break") return out;

    // Local declarations introduce register-class arrays and KernelArgs
    // bundles; a pure declaration contributes no traffic.
    static const std::regex kLocalArray(
        R"(^(?:const\s+)?(double|float|int|std::int64_t|std::uint32_t|auto)\s+(\w+)\s*\[)");
    std::smatch m;
    if (std::regex_search(stmt, m, kLocalArray) &&
        stmt.find('=') == std::string::npos) {
      Sym sym;
      sym.kind = SymKind::kLocalArray;
      sym.role = ArrayRole::kLocal;
      sym.canonical = m[2].str();
      syms[m[2].str()] = sym;
      return out;
    }
    static const std::regex kLocalArgs(R"(KernelArgs\s+(\w+)\s*$)");
    if (std::regex_search(stmt, m, kLocalArgs)) {
      Sym sym;
      sym.kind = SymKind::kKernelArgs;
      sym.canonical = m[1].str();
      syms[m[1].str()] = sym;
      return out;
    }

    // Calls into the shared inline kernel bodies.
    static const std::regex kCall(R"(([A-Za-z_][A-Za-z0-9_:]*)\s*\()");
    for (auto it = std::sregex_iterator(stmt.begin(), stmt.end(), kCall);
         it != std::sregex_iterator(); ++it) {
      const std::size_t name_pos = static_cast<std::size_t>(it->position(1));
      // Skip member calls (x.size()) but keep qualified ones (ns::fn()).
      std::size_t before = name_pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(stmt[before - 1])))
        --before;
      if (before > 0 && (stmt[before - 1] == '.' ||
                         (before > 1 && stmt[before - 2] == '-' &&
                          stmt[before - 1] == '>')))
        continue;
      std::string name = (*it)[1].str();
      const std::size_t colons = name.rfind("::");
      if (colons != std::string::npos) name = name.substr(colons + 2);

      const auto flops_it = intrinsic_flops().find(name);
      if (flops_it != intrinsic_flops().end()) {
        out.flops += flops_it->second;
        continue;
      }
      const auto fn_it = registry_.find(name);
      if (fn_it == registry_.end() || depth > 16) continue;
      const FunctionDef& fn = fn_it->second;

      const std::size_t open = name_pos + it->length(1) +
                               (stmt.substr(name_pos + it->length(1))
                                    .find('(')); // first '(' after the name
      const std::size_t close = match_delim(stmt, open);
      const std::vector<std::string> args =
          split_top_level(stmt.substr(open + 1, close - open - 2), ',');

      SymTab callee_syms;
      for (std::size_t k = 0; k < fn.params.size(); ++k) {
        const Param& formal = fn.params[k];
        if (!formal.arrayish || formal.name.empty()) continue;
        Sym bound = formal.sym;
        if (k < args.size()) {
          std::string actual = trim(args[k]);
          while (!actual.empty() && (actual[0] == '&' || actual[0] == '*'))
            actual = trim(actual.substr(1));
          static const std::regex kIdent(R"(^[\w:]+(?:(?:\.|->)\w+)*$)");
          if (std::regex_match(actual, kIdent)) {
            std::string canonical;
            if (const Sym* sym = resolve(actual, syms, &canonical)) {
              bound = *sym;
              bound.canonical = canonical;
            } else if (syms.contains(actual) &&
                       syms.at(actual).kind == SymKind::kKernelArgs) {
              bound = syms.at(actual);
            }
          }
        }
        if (bound.canonical.empty()) bound.canonical = formal.name;
        callee_syms[formal.name] = bound;
      }
      BlockParser parser(fn.body);
      const NodePtr tree = parser.parse();
      out.merge_sum(eval(*tree, callee_syms, depth + 1));
    }

    // Assignment split: subscripts on the left-hand side are stores.
    std::size_t assign_pos = std::string::npos;
    bool compound = false;
    {
      int d = 0;
      for (std::size_t i = 0; i < stmt.size(); ++i) {
        const char c = stmt[i];
        if (c == '(' || c == '[' || c == '{') ++d;
        else if (c == ')' || c == ']' || c == '}') --d;
        if (d != 0 || c != '=') continue;
        const char prev = i > 0 ? stmt[i - 1] : '\0';
        const char next = i + 1 < stmt.size() ? stmt[i + 1] : '\0';
        if (next == '=' || prev == '=' || prev == '<' || prev == '>' ||
            prev == '!')
          continue;
        assign_pos = i;
        compound = prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
                   prev == '|' || prev == '&' || prev == '^';
        break;
      }
    }

    // Subscript accesses, outermost first; nested indices are loads.
    std::vector<std::pair<std::size_t, std::size_t>> index_ranges;
    scan_subscripts(stmt, 0, stmt.size(), assign_pos, compound, false, syms,
                    &out, &index_ranges);

    // Arithmetic outside subscript index expressions counts as flops.
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      const char c = stmt[i];
      if (c != '+' && c != '-' && c != '*' && c != '/') continue;
      const char next = i + 1 < stmt.size() ? stmt[i + 1] : '\0';
      const char prev = i > 0 ? stmt[i - 1] : '\0';
      if ((c == '+' && (next == '+' || prev == '+')) ||
          (c == '-' && (next == '-' || prev == '-' || next == '>')))
        continue;
      if (c == '*' && (prev == '(' || prev == ',' ||
                       (i + 1 < stmt.size() &&
                        std::isalpha(static_cast<unsigned char>(next)) == 0 &&
                        next == ' ' && false)))
        continue;  // crude deref guard; declarations were filtered above
      bool in_index = false;
      for (const auto& [b, e] : index_ranges)
        if (i >= b && i < e) { in_index = true; break; }
      if (!in_index) out.flops += 1.0;
    }
    return out;
  }

  /// Finds subscripts in stmt[begin, end); `nested` marks index-expression
  /// context (always loads).  Records each index range for the flop scan.
  void scan_subscripts(
      const std::string& stmt, std::size_t begin, std::size_t end,
      std::size_t assign_pos, bool compound, bool nested, SymTab& syms,
      Counts* out,
      std::vector<std::pair<std::size_t, std::size_t>>* index_ranges) const {
    static const std::regex kBase(R"(([A-Za-z_]\w*(?:(?:\.|->)\w+)*)\s*\[)");
    std::size_t pos = begin;
    while (pos < end) {
      const std::string window = stmt.substr(pos, end - pos);
      std::smatch m;
      if (!std::regex_search(window, m, kBase)) return;
      const std::size_t base_start = pos + static_cast<std::size_t>(m.position(1));
      const std::size_t open = pos + static_cast<std::size_t>(m.position(0)) +
                               static_cast<std::size_t>(m.length(0)) - 1;
      const std::size_t close = match_delim(stmt, open);
      const std::string base = m[1].str();
      const std::string index = stmt.substr(open + 1, close - open - 2);
      index_ranges->emplace_back(open + 1, close - 1);

      std::string canonical;
      if (const Sym* sym = resolve(base, syms, &canonical)) {
        const StrideClass stride = classify_stride(index);
        const ArrayRole role = sym->kind == SymKind::kLocalArray
                                   ? ArrayRole::kLocal
                                   : sym->role;
        const bool is_store = !nested && assign_pos != std::string::npos &&
                              base_start < assign_pos;
        if (is_store) {
          out->add(canonical, AccessDir::kStore, stride, 1.0, role,
                   sym->elem_bytes);
          if (compound)
            out->add(canonical, AccessDir::kLoad, stride, 1.0, role,
                     sym->elem_bytes);
        } else {
          out->add(canonical, AccessDir::kLoad, stride, 1.0, role,
                   sym->elem_bytes);
        }
      }
      // Nested subscripts inside this index are loads.
      scan_subscripts(stmt, open + 1, close - 1, assign_pos, compound, true,
                      syms, out, index_ranges);
      pos = close;
    }
  }
};

KernelProfile profile_functor(const FunctorDef& functor,
                              const Registry& registry) {
  KernelProfile profile;
  profile.kernel = functor.name;
  profile.file = functor.file;
  profile.line = functor.line;

  SymTab syms = functor.members;
  BlockParser parser(functor.body);
  const NodePtr tree = parser.parse();
  const Evaluator evaluator(registry);
  Counts counts = evaluator.eval(*tree, syms, 0);

  for (const auto& [key, count] : counts.acc) {
    if (count <= 0.0) continue;
    const auto& [array, role, dir, stride] = key;
    const AccMeta& meta = counts.meta.at({array, role});
    ArrayAccess access;
    access.array = array;
    access.role = meta.role;
    access.dir = static_cast<AccessDir>(dir);
    access.stride = static_cast<StrideClass>(stride);
    access.count_per_point = count;
    access.elem_bytes = meta.elem_bytes;
    profile.accesses.push_back(std::move(access));
  }
  std::sort(profile.accesses.begin(), profile.accesses.end(),
            [](const ArrayAccess& a, const ArrayAccess& b) {
              return std::tie(a.array, a.role, a.dir, a.stride) <
                     std::tie(b.array, b.role, b.dir, b.stride);
            });
  profile.flops_per_point = counts.flops;
  return profile;
}

std::string read_repo_file(const std::string& relative) {
  const std::string path = std::string(HEMO_REPO_DIR) + "/" + relative;
  std::ifstream in(path);
  HEMO_EXPECTS(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::vector<KernelProfile> extract_kernel_profiles(
    const std::vector<FluxSource>& sources) {
  Registry registry;
  std::vector<FunctorDef> functors;
  for (const FluxSource& source : sources)
    parse_file(source, &registry, &functors);
  std::vector<KernelProfile> profiles;
  profiles.reserve(functors.size());
  for (const FunctorDef& functor : functors)
    profiles.push_back(profile_functor(functor, registry));
  sort_profiles(profiles);
  return profiles;
}

std::vector<KernelProfile> extract_dialect_profiles(
    port::CorpusDialect dialect) {
  const char* prefix = "";
  switch (dialect) {
    case port::CorpusDialect::kCudax: prefix = "cudax/"; break;
    case port::CorpusDialect::kHipx: prefix = "hipx/"; break;
    case port::CorpusDialect::kSyclx: prefix = "syclx/"; break;
    case port::CorpusDialect::kKokkosx: prefix = "kokkosx/"; break;
  }
  std::vector<FluxSource> sources;
  sources.push_back(FluxSource{std::string(prefix) + "kernels.h",
                               port::read_corpus_file(dialect, "kernels.h")});
  sources.push_back(
      FluxSource{"lbm/kernels.hpp", read_repo_file("src/lbm/kernels.hpp")});
  std::vector<KernelProfile> profiles = extract_kernel_profiles(sources);
  // The shared header defines no functors, so every profile is dialect-
  // local; keep only those (defensive against future lbm structs).
  std::erase_if(profiles, [&](const KernelProfile& p) {
    return p.file.rfind(prefix, 0) != 0;
  });
  return profiles;
}

bool is_hot_loop_kernel(const std::string& kernel) {
  return kernel == "StreamCollideKernel" || kernel == "StreamOnlyKernel" ||
         kernel == "CollideOnlyKernel" ||
         kernel == "StreamCollideAAEvenKernel" ||
         kernel == "StreamCollideAAOddKernel";
}

}  // namespace hemo::analysis
