#include "analysis/report.hpp"

#include <cstdio>
#include <sstream>

namespace hemo::analysis {

std::string text_report(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << d.file;
    if (d.line > 0) out << ':' << d.line;
    out << ": " << severity_name(d.severity) << ": [" << d.rule_id << "] "
        << d.message << '\n';
    if (!d.fixit_hint.empty()) out << "    fixit: " << d.fixit_hint << '\n';
  }

  const auto by_rule = count_by_rule(diagnostics);
  const auto by_severity = count_by_severity(diagnostics);
  out << '\n' << diagnostics.size() << " diagnostic"
      << (diagnostics.size() == 1 ? "" : "s");
  if (!diagnostics.empty()) {
    out << " (";
    bool first = true;
    for (const auto& [sev, count] : by_severity) {
      if (!first) out << ", ";
      first = false;
      out << count << ' ' << severity_name(sev)
          << (count == 1 ? "" : "s");
    }
    out << ')';
  }
  out << '\n';
  for (const auto& [rule, count] : by_rule)
    out << "  " << rule << ": " << count << '\n';
  return out.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_report(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  out << "{\n  \"version\": \"hemo-lint/1\",\n  \"results\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"ruleId\": \"" << json_escape(d.rule_id) << "\", "
        << "\"level\": \"" << severity_name(d.severity) << "\", "
        << "\"file\": \"" << json_escape(d.file) << "\", "
        << "\"line\": " << d.line << ", "
        << "\"message\": \"" << json_escape(d.message) << "\", "
        << "\"fixit\": \"" << json_escape(d.fixit_hint) << "\"}";
  }
  out << (diagnostics.empty() ? "" : "\n  ") << "],\n";

  out << "  \"summary\": {\"total\": " << diagnostics.size()
      << ", \"byRule\": {";
  bool first = true;
  for (const auto& [rule, count] : count_by_rule(diagnostics)) {
    if (!first) out << ", ";
    first = false;
    out << '"' << json_escape(rule) << "\": " << count;
  }
  out << "}, \"bySeverity\": {";
  first = true;
  for (const auto& [sev, count] : count_by_severity(diagnostics)) {
    if (!first) out << ", ";
    first = false;
    out << '"' << severity_name(sev) << "\": " << count;
  }
  out << "}}\n}\n";
  return out.str();
}

}  // namespace hemo::analysis
