#include "analysis/flux_ir.hpp"

#include <algorithm>

namespace hemo::analysis {

const char* dir_name(AccessDir dir) {
  switch (dir) {
    case AccessDir::kLoad: return "load";
    case AccessDir::kStore: return "store";
  }
  return "?";
}

const char* stride_name(StrideClass stride) {
  switch (stride) {
    case StrideClass::kUnit: return "unit";
    case StrideClass::kSoA: return "soa";
    case StrideClass::kAoS: return "aos";
    case StrideClass::kGather: return "gather";
  }
  return "?";
}

const char* role_name(ArrayRole role) {
  switch (role) {
    case ArrayRole::kDistribution: return "distribution";
    case ArrayRole::kAdjacency: return "adjacency";
    case ArrayRole::kNodeType: return "node_type";
    case ArrayRole::kHaloBuffer: return "halo_buffer";
    case ArrayRole::kIndexList: return "index_list";
    case ArrayRole::kScratch: return "scratch";
    case ArrayRole::kConstantTable: return "constant";
    case ArrayRole::kLocal: return "local";
  }
  return "?";
}

namespace {

bool streamed(ArrayRole role) {
  return role != ArrayRole::kConstantTable && role != ArrayRole::kLocal;
}

}  // namespace

double KernelProfile::bytes_per_point(ArrayRole role, AccessDir dir) const {
  double bytes = 0.0;
  for (const ArrayAccess& a : accesses)
    if (a.role == role && a.dir == dir && streamed(role))
      bytes += a.bytes_per_point();
  return bytes;
}

double KernelProfile::bytes_per_point(ArrayRole role) const {
  return bytes_per_point(role, AccessDir::kLoad) +
         bytes_per_point(role, AccessDir::kStore);
}

double KernelProfile::distribution_bytes_per_point() const {
  return bytes_per_point(ArrayRole::kDistribution);
}

bool KernelProfile::in_place_distribution_update() const {
  bool any_store = false;
  for (const ArrayAccess& s : accesses) {
    if (s.role != ArrayRole::kDistribution || s.dir != AccessDir::kStore ||
        s.count_per_point <= 0.0)
      continue;
    any_store = true;
    double dist_loads = 0.0;
    for (const ArrayAccess& l : accesses)
      if (l.role == ArrayRole::kDistribution && l.dir == AccessDir::kLoad &&
          l.array == s.array)
        dist_loads += l.count_per_point;
    if (dist_loads <= 0.0) return false;
  }
  return any_store;
}

double KernelProfile::streamed_distribution_bytes_per_point() const {
  // Fold per distribution array: one pass if read-modify-write in place,
  // separate passes (sum) otherwise.
  double bytes = 0.0;
  std::vector<std::string> seen;
  for (const ArrayAccess& a : accesses) {
    if (a.role != ArrayRole::kDistribution) continue;
    if (std::find(seen.begin(), seen.end(), a.array) != seen.end()) continue;
    seen.push_back(a.array);
    double loads = 0.0, stores = 0.0;
    for (const ArrayAccess& b : accesses) {
      if (b.role != ArrayRole::kDistribution || b.array != a.array) continue;
      (b.dir == AccessDir::kLoad ? loads : stores) += b.bytes_per_point();
    }
    bytes += loads > 0.0 && stores > 0.0 ? std::max(loads, stores)
                                         : loads + stores;
  }
  return bytes;
}

double KernelProfile::total_bytes_per_point() const {
  double bytes = 0.0;
  for (const ArrayAccess& a : accesses)
    if (streamed(a.role)) bytes += a.bytes_per_point();
  return bytes;
}

double KernelProfile::loads_per_point(const std::string& array) const {
  double count = 0.0;
  for (const ArrayAccess& a : accesses)
    if (a.array == array && a.dir == AccessDir::kLoad)
      count += a.count_per_point;
  return count;
}

double KernelProfile::stores_per_point(const std::string& array) const {
  double count = 0.0;
  for (const ArrayAccess& a : accesses)
    if (a.array == array && a.dir == AccessDir::kStore)
      count += a.count_per_point;
  return count;
}

bool KernelProfile::touches_stride(ArrayRole role, StrideClass stride) const {
  for (const ArrayAccess& a : accesses)
    if (a.role == role && a.stride == stride && a.count_per_point > 0.0)
      return true;
  return false;
}

void sort_profiles(std::vector<KernelProfile>& profiles) {
  std::sort(profiles.begin(), profiles.end(),
            [](const KernelProfile& a, const KernelProfile& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.kernel < b.kernel;
            });
}

}  // namespace hemo::analysis
