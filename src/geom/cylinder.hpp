#pragma once
// Cylindrical channel geometry, parameterised exactly as the paper's LBM
// proxy application (Section 3.2): axial length 84*x lattice units and
// radius 8*x, where x is a user-specified scale factor.  The axis is z;
// flow is driven either by a body force with periodic ends (Poiseuille
// validation) or by Zou-He inlet/outlet caps.

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::geom {

struct CylinderSpec {
  double scale = 1.0;              // the paper's "x" factor
  double axial_per_scale = 84.0;   // axial length = 84 * x
  double radius_per_scale = 8.0;   // radius = 8 * x

  std::int64_t length() const {
    return static_cast<std::int64_t>(axial_per_scale * scale);
  }
  double radius() const { return radius_per_scale * scale; }
};

enum class CylinderEnds {
  kPeriodic,      // periodic in z; drive with a body force
  kInletOutlet,   // Zou-He velocity inlet at z=0, pressure outlet at z=L-1
};

/// Fluid-point coordinates of the cylinder: sites with distance from the
/// axis strictly less than the radius.  Deterministic ordering (z, y, x).
std::vector<Coord> cylinder_points(const CylinderSpec& spec);

/// Analytic approximation of the fluid-point count (pi r^2 L); the exact
/// voxel count converges to this as the scale grows.
double cylinder_point_estimate(const CylinderSpec& spec);

/// Builds the sparse lattice, wiring periodicity or Zou-He caps.
std::shared_ptr<lbm::SparseLattice> make_cylinder_lattice(
    const CylinderSpec& spec, CylinderEnds ends);

}  // namespace hemo::geom
