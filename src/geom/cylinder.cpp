#include "geom/cylinder.hpp"

#include <cmath>

#include "base/contracts.hpp"

namespace hemo::geom {

std::vector<Coord> cylinder_points(const CylinderSpec& spec) {
  HEMO_EXPECTS(spec.scale > 0.0);
  const std::int64_t length = spec.length();
  const double radius = spec.radius();
  HEMO_EXPECTS(length >= 1 && radius >= 1.0);

  // Center the axis on a half-integer so the cross-section is symmetric.
  const auto r_cells = static_cast<std::int32_t>(std::ceil(radius));
  const double cx = r_cells - 0.5;
  const double cy = r_cells - 0.5;
  const double r2 = radius * radius;

  std::vector<Coord> points;
  points.reserve(static_cast<std::size_t>(cylinder_point_estimate(spec) * 1.1));
  for (std::int32_t z = 0; z < length; ++z) {
    for (std::int32_t y = 0; y < 2 * r_cells; ++y) {
      for (std::int32_t x = 0; x < 2 * r_cells; ++x) {
        const double dx = x - cx;
        const double dy = y - cy;
        if (dx * dx + dy * dy < r2) points.push_back(Coord{x, y, z});
      }
    }
  }
  HEMO_ENSURES(!points.empty());
  return points;
}

double cylinder_point_estimate(const CylinderSpec& spec) {
  const double r = spec.radius();
  return 3.14159265358979323846 * r * r *
         static_cast<double>(spec.length());
}

std::shared_ptr<lbm::SparseLattice> make_cylinder_lattice(
    const CylinderSpec& spec, CylinderEnds ends) {
  std::vector<Coord> points = cylinder_points(spec);
  const auto length = static_cast<std::int32_t>(spec.length());

  lbm::Periodicity periodic;
  if (ends == CylinderEnds::kPeriodic) {
    periodic.axis[2] = true;
    periodic.period[2] = length;
  }
  auto lattice =
      std::make_shared<lbm::SparseLattice>(std::move(points), periodic);

  if (ends == CylinderEnds::kInletOutlet) {
    for (PointIndex i = 0; i < lattice->size(); ++i) {
      const Coord& c = lattice->coord(i);
      if (c.z == 0)
        lattice->set_node_type(i, lbm::NodeType::kVelocityInlet);
      else if (c.z == length - 1)
        lattice->set_node_type(i, lbm::NodeType::kPressureOutlet);
    }
  }
  return lattice;
}

}  // namespace hemo::geom
