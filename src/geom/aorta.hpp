#pragma once
// Synthetic patient-derived aorta geometry.  The paper's real-world
// workload is an image-derived human aorta (Fig. 2a); no scan data ships
// with this reproduction, so we generate an anatomically proportioned
// substitute: ascending aorta, aortic arch, tapering descending aorta and
// the three arch branches (brachiocephalic, left carotid, left
// subclavian), with a smooth deterministic wall irregularity standing in
// for patient variability.  What matters for the evaluation — a sparse,
// curved, multi-outlet fluid domain with nontrivial load balance — is
// preserved.

#include <memory>
#include <vector>

#include "base/types.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::geom {

struct AortaSpec {
  /// Lattice grid spacing in millimetres.  The paper sweeps 0.110 mm,
  /// 0.055 mm and 0.0275 mm; those sizes are far too large to instantiate
  /// here, so the cluster simulator measures a coarse instance and
  /// extrapolates (see hemo::sim).  Default is a ~0.2M-point instance.
  double spacing_mm = 0.88;

  // Anatomical parameters (millimetres).
  double ascending_radius = 14.0;
  double descending_radius_top = 12.0;
  double descending_radius_bottom = 9.5;
  double ascending_length = 40.0;
  double descending_length = 110.0;
  double arch_radius = 30.0;        // radius of curvature of the arch
  double branch_radius[3] = {5.2, 3.9, 4.6};
  double branch_angles_deg[3] = {135.0, 95.0, 50.0};  // position on arch
  /// Relative amplitude of the synthetic wall irregularity.
  double irregularity = 0.05;
};

/// Centerline sample: position and local vessel radius, both in mm.
struct CenterlineSample {
  Vec3 position;
  double radius = 0.0;
};

/// The full centerline tree (all five vessels concatenated); exposed for
/// tests and visualization examples.
std::vector<CenterlineSample> aorta_centerline(const AortaSpec& spec);

/// Voxelized fluid points in lattice units (deterministic ordering).
std::vector<Coord> aorta_points(const AortaSpec& spec);

/// Builds the sparse lattice with the inlet at the ascending root, a
/// pressure outlet at the descending end (domain z-min) and pressure
/// outlets at the three branch tips (domain z-max).
std::shared_ptr<lbm::SparseLattice> make_aorta_lattice(const AortaSpec& spec);

}  // namespace hemo::geom
