#include "geom/aorta.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "base/contracts.hpp"

namespace hemo::geom {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Smooth deterministic pseudo-noise in [-1, 1]; two incommensurate
/// harmonics so the wall irregularity does not repeat visibly.
double wall_noise(double s) {
  return 0.6 * std::sin(0.13 * s) + 0.4 * std::sin(0.071 * s + 1.3);
}

void sample_segment(std::vector<CenterlineSample>& out, const Vec3& a,
                    const Vec3& b, double r0, double r1, double step_mm,
                    double noise_amplitude, double noise_phase) {
  const Vec3 d = b - a;
  const double len = std::sqrt(d.norm2());
  const int steps = std::max(2, static_cast<int>(len / step_mm));
  for (int k = 0; k <= steps; ++k) {
    const double t = static_cast<double>(k) / steps;
    const double radius = r0 + (r1 - r0) * t;
    const double wobble =
        1.0 + noise_amplitude * wall_noise(noise_phase + t * len);
    out.push_back({a + d * t, radius * wobble});
  }
}

void sample_arch(std::vector<CenterlineSample>& out, const AortaSpec& spec,
                 double step_mm) {
  // Semicircle in the x-z plane, centered above the ascending aorta.
  const Vec3 center{spec.arch_radius, 0.0, spec.ascending_length};
  const double arc_len = kPi * spec.arch_radius;
  const int steps = std::max(8, static_cast<int>(arc_len / step_mm));
  for (int k = 0; k <= steps; ++k) {
    const double t = static_cast<double>(k) / steps;
    const double angle = kPi * (1.0 - t);  // 180 deg (ascending) -> 0 (descending)
    const Vec3 p{center.x + spec.arch_radius * std::cos(angle), 0.0,
                 center.z + spec.arch_radius * std::sin(angle)};
    const double radius = spec.ascending_radius +
                          (spec.descending_radius_top - spec.ascending_radius) * t;
    const double wobble =
        1.0 + spec.irregularity * wall_noise(300.0 + t * arc_len);
    out.push_back({p, radius * wobble});
  }
}

}  // namespace

std::vector<CenterlineSample> aorta_centerline(const AortaSpec& spec) {
  HEMO_EXPECTS(spec.spacing_mm > 0.0);
  const double step = std::max(spec.spacing_mm * 0.5, 0.05);
  std::vector<CenterlineSample> samples;

  // Ascending aorta: straight up from the root at the origin.
  sample_segment(samples, Vec3{0.0, 0.0, 0.0},
                 Vec3{0.0, 0.0, spec.ascending_length}, spec.ascending_radius,
                 spec.ascending_radius, step, spec.irregularity, 0.0);

  sample_arch(samples, spec, step);

  // Descending aorta: straight down past the root level, tapering.
  const Vec3 desc_top{2.0 * spec.arch_radius, 0.0, spec.ascending_length};
  const Vec3 desc_bottom{2.0 * spec.arch_radius, 0.0,
                         -spec.descending_length};
  sample_segment(samples, desc_top, desc_bottom, spec.descending_radius_top,
                 spec.descending_radius_bottom, step, spec.irregularity,
                 700.0);

  // Arch branches: vertical vessels whose tips all reach the same height
  // so the branch outlets form a single z-max plane.
  const double tip_z = spec.ascending_length + spec.arch_radius + 35.0;
  for (int b = 0; b < 3; ++b) {
    const double angle = spec.branch_angles_deg[b] * kPi / 180.0;
    const Vec3 base{spec.arch_radius + spec.arch_radius * std::cos(angle), 0.0,
                    spec.ascending_length + spec.arch_radius * std::sin(angle)};
    const Vec3 tip{base.x, 0.0, tip_z};
    sample_segment(samples, base, tip, spec.branch_radius[b],
                   spec.branch_radius[b] * 0.9, step, spec.irregularity,
                   1200.0 + 400.0 * b);
  }
  return samples;
}

std::vector<Coord> aorta_points(const AortaSpec& spec) {
  const std::vector<CenterlineSample> line = aorta_centerline(spec);
  const double h = spec.spacing_mm;

  // Global z offset so all lattice coordinates are non-negative: the
  // descending outlet plane lands on z = 0.
  const double z_offset = spec.descending_length;
  const double x_offset = spec.ascending_radius * 1.5;
  const double y_offset = spec.ascending_radius * 1.5;

  std::unordered_set<Coord, CoordHash> voxels;
  for (const CenterlineSample& s : line) {
    const double cx = (s.position.x + x_offset) / h;
    const double cy = (s.position.y + y_offset) / h;
    const double cz = (s.position.z + z_offset) / h;
    const double r = s.radius / h;
    const auto x0 = static_cast<std::int32_t>(std::floor(cx - r));
    const auto x1 = static_cast<std::int32_t>(std::ceil(cx + r));
    const auto y0 = static_cast<std::int32_t>(std::floor(cy - r));
    const auto y1 = static_cast<std::int32_t>(std::ceil(cy + r));
    const auto z0 = static_cast<std::int32_t>(std::floor(cz - r));
    const auto z1 = static_cast<std::int32_t>(std::ceil(cz + r));
    const double r2 = r * r;
    for (std::int32_t z = std::max(0, z0); z <= z1; ++z)
      for (std::int32_t y = std::max(0, y0); y <= y1; ++y)
        for (std::int32_t x = std::max(0, x0); x <= x1; ++x) {
          const double dx = x - cx, dy = y - cy, dz = z - cz;
          if (dx * dx + dy * dy + dz * dz < r2)
            voxels.insert(Coord{x, y, z});
        }
  }

  // Clip above the branch-tip plane and below the ascending root so the
  // inlet/outlet caps are flat planes (the descending outlet is already
  // flattened by the z >= 0 clip during stamping).
  const auto tip_plane = static_cast<std::int32_t>(
      (spec.ascending_length + spec.arch_radius + 35.0 + z_offset) / h - 1.0);
  const auto inlet_plane =
      static_cast<std::int32_t>(std::round(spec.descending_length / h));
  const auto x_mid =
      static_cast<std::int32_t>((spec.arch_radius + x_offset) / h);

  std::vector<Coord> points;
  points.reserve(voxels.size());
  for (const Coord& c : voxels) {
    if (c.z > tip_plane) continue;
    if (c.z < inlet_plane && c.x < x_mid) continue;  // below the root cap
    points.push_back(c);
  }

  std::sort(points.begin(), points.end(), [](const Coord& a, const Coord& b) {
    if (a.z != b.z) return a.z < b.z;
    if (a.y != b.y) return a.y < b.y;
    return a.x < b.x;
  });
  HEMO_ENSURES(!points.empty());
  return points;
}

std::shared_ptr<lbm::SparseLattice> make_aorta_lattice(const AortaSpec& spec) {
  auto lattice =
      std::make_shared<lbm::SparseLattice>(aorta_points(spec), lbm::Periodicity{});

  const Box box = lattice->bounding_box();
  const double h = spec.spacing_mm;
  // Plane of the ascending-aorta root (inlet): z = descending_length in mm.
  const auto inlet_plane =
      static_cast<std::int32_t>(std::round(spec.descending_length / h));
  // The descending aorta also crosses the inlet plane but sits at larger x
  // (~2*arch_radius); the arch midpoint separates the two.
  const auto x_mid = static_cast<std::int32_t>(
      (spec.arch_radius + spec.ascending_radius * 1.5) / h);

  for (PointIndex i = 0; i < lattice->size(); ++i) {
    const Coord& c = lattice->coord(i);
    if (c.z == box.lo.z) {
      lattice->set_node_type(i, lbm::NodeType::kPressureOutletLow);
    } else if (c.z == box.hi.z - 1) {
      lattice->set_node_type(i, lbm::NodeType::kPressureOutlet);
    } else if (c.z == inlet_plane && c.x < x_mid) {
      lattice->set_node_type(i, lbm::NodeType::kVelocityInlet);
    }
  }
  return lattice;
}

}  // namespace hemo::geom
