#pragma once
// Domain decomposition interfaces.  A Partition assigns every fluid point
// of a lattice to one rank (one GPU / GCD / tile in the paper's terms).
//
// Two strategies mirror the paper (Section 10): the proxy app's simple
// slab decomposition, which is perfectly balanced for the cylinder it was
// designed for, and HARVEY's recursive load-bisection balancer for complex
// geometries.

#include <cstdint>
#include <vector>

#include "base/types.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::decomp {

struct Partition {
  int n_ranks = 0;
  std::vector<Rank> owner;  // rank of each point, indexed by PointIndex

  /// Number of points owned by each rank.
  std::vector<std::int64_t> rank_counts() const;

  /// Ranks that own at least one point, ascending.  A full partition is
  /// active on every rank; a post-shrink partition keeps its original
  /// rank numbering and simply leaves dead ranks empty.
  std::vector<Rank> active_ranks() const;

  /// max(count) / mean(count) over the *active* (non-empty) ranks; 1.0
  /// means perfect balance.  Averaging over active ranks keeps the metric
  /// meaningful for shrunken partitions, and is identical to the plain
  /// mean for full partitions.
  double imbalance() const;

  /// Owned point indices of one rank, in ascending order.
  std::vector<PointIndex> points_of(Rank r) const;
};

/// Slab decomposition: points are ordered (z, y, x) and cut into n_ranks
/// contiguous chunks of near-equal size.  This is the proxy application's
/// scheme; for a z-aligned cylinder the cuts are flat axial slabs and the
/// balance is perfect up to +/-1 point.
Partition slab_partition(const lbm::SparseLattice& lattice, int n_ranks);

/// Recursive load bisection: the point set is split along the longest axis
/// of its bounding box at the weighted median, recursing until each leaf
/// holds one rank's points.  Handles non-power-of-two rank counts by
/// splitting ranks (and target point shares) proportionally.
Partition bisection_partition(const lbm::SparseLattice& lattice, int n_ranks);

/// Shrink-to-survivors re-decomposition: bisects the *whole* lattice over
/// the `survivors` subset of an `n_ranks_total`-rank configuration.  The
/// returned partition keeps the original rank numbering (n_ranks =
/// n_ranks_total; owner values are drawn from `survivors` only), so rank
/// identities — and with them fault plans, ledgers and provenance records
/// — stay stable across a shrink; dead ranks simply own zero points.
/// `survivors` must be non-empty, strictly ascending and within
/// [0, n_ranks_total).  Deterministic in all arguments, including
/// non-power-of-two survivor counts.
Partition bisection_partition(const lbm::SparseLattice& lattice,
                              int n_ranks_total,
                              const std::vector<Rank>& survivors);

/// One direction of a halo exchange: how many distribution values rank
/// `src` must send to rank `dst` each iteration.
struct HaloMessage {
  Rank src = 0;
  Rank dst = 0;
  std::int64_t values = 0;  // number of crossing (point, direction) links

  std::int64_t bytes() const {
    return values * static_cast<std::int64_t>(sizeof(double));
  }
};

/// The complete communication pattern implied by a partition: one message
/// per ordered rank pair with at least one crossing lattice link.
struct HaloPlan {
  std::vector<HaloMessage> messages;  // sorted by (src, dst)

  std::int64_t total_values() const;
  /// Messages sent by one rank.
  std::vector<HaloMessage> sends_of(Rank r) const;
  /// Largest per-rank total send volume, in values.
  std::int64_t max_rank_send_values(int n_ranks) const;
};

/// Builds the halo plan by walking every lattice link that crosses a rank
/// boundary (pull scheme: dst owns point i, src owns its upstream neighbor).
HaloPlan build_halo_plan(const lbm::SparseLattice& lattice,
                         const Partition& partition);

}  // namespace hemo::decomp
