#include "decomp/partition.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "base/contracts.hpp"

namespace hemo::decomp {

std::vector<std::int64_t> Partition::rank_counts() const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n_ranks), 0);
  for (Rank r : owner) ++counts[static_cast<std::size_t>(r)];
  return counts;
}

std::vector<Rank> Partition::active_ranks() const {
  const auto counts = rank_counts();
  std::vector<Rank> out;
  for (Rank r = 0; r < n_ranks; ++r)
    if (counts[static_cast<std::size_t>(r)] > 0) out.push_back(r);
  return out;
}

double Partition::imbalance() const {
  const auto counts = rank_counts();
  const std::int64_t max =
      *std::max_element(counts.begin(), counts.end());
  std::int64_t active = 0;
  for (const std::int64_t c : counts)
    if (c > 0) ++active;
  const double mean =
      static_cast<double>(owner.size()) / std::max<std::int64_t>(active, 1);
  return static_cast<double>(max) / mean;
}

std::vector<PointIndex> Partition::points_of(Rank r) const {
  std::vector<PointIndex> out;
  for (std::size_t i = 0; i < owner.size(); ++i)
    if (owner[i] == r) out.push_back(static_cast<PointIndex>(i));
  return out;
}

Partition slab_partition(const lbm::SparseLattice& lattice, int n_ranks) {
  HEMO_EXPECTS(n_ranks >= 1);
  const auto n = static_cast<std::size_t>(lattice.size());
  HEMO_EXPECTS(static_cast<std::size_t>(n_ranks) <= n);

  // Order points lexicographically by (z, y, x); geometry generators emit
  // this order already, but re-derive it here so the partition does not
  // depend on generator internals.
  std::vector<PointIndex> order(n);
  std::iota(order.begin(), order.end(), PointIndex{0});
  std::sort(order.begin(), order.end(), [&](PointIndex a, PointIndex b) {
    const Coord& ca = lattice.coord(a);
    const Coord& cb = lattice.coord(b);
    if (ca.z != cb.z) return ca.z < cb.z;
    if (ca.y != cb.y) return ca.y < cb.y;
    return ca.x < cb.x;
  });

  Partition p;
  p.n_ranks = n_ranks;
  p.owner.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    // Chunk boundaries at floor(k * n_ranks / n) distribute the remainder
    // evenly: every rank gets floor(n/n_ranks) or ceil(n/n_ranks) points.
    const auto r = static_cast<Rank>((k * static_cast<std::size_t>(n_ranks)) / n);
    p.owner[static_cast<std::size_t>(order[k])] = r;
  }
  return p;
}

namespace {

/// Recursively assigns ranks [rank_lo, rank_lo + n_ranks) to the points in
/// index range [lo, hi) of `order`, splitting at the coordinate median of
/// the longest bounding-box axis.
void bisect(const lbm::SparseLattice& lattice, std::vector<PointIndex>& order,
            std::size_t lo, std::size_t hi, Rank rank_lo, int n_ranks,
            std::vector<Rank>& owner) {
  if (n_ranks == 1) {
    for (std::size_t k = lo; k < hi; ++k)
      owner[static_cast<std::size_t>(order[k])] = rank_lo;
    return;
  }

  // Bounding box of this subset.
  Box box{Coord{INT32_MAX, INT32_MAX, INT32_MAX},
          Coord{INT32_MIN, INT32_MIN, INT32_MIN}};
  for (std::size_t k = lo; k < hi; ++k) {
    const Coord& c = lattice.coord(order[k]);
    box.lo.x = std::min(box.lo.x, c.x);
    box.lo.y = std::min(box.lo.y, c.y);
    box.lo.z = std::min(box.lo.z, c.z);
    box.hi.x = std::max(box.hi.x, c.x + 1);
    box.hi.y = std::max(box.hi.y, c.y + 1);
    box.hi.z = std::max(box.hi.z, c.z + 1);
  }
  const int axis = box.longest_axis();
  const auto coord_of = [&](PointIndex i) {
    const Coord& c = lattice.coord(i);
    return axis == 0 ? c.x : axis == 1 ? c.y : c.z;
  };

  const int ranks_a = n_ranks / 2;
  const int ranks_b = n_ranks - ranks_a;
  // Weighted split: point share proportional to rank share, so odd rank
  // counts still balance.
  const std::size_t split =
      lo + ((hi - lo) * static_cast<std::size_t>(ranks_a)) /
               static_cast<std::size_t>(n_ranks);

  std::nth_element(order.begin() + static_cast<std::ptrdiff_t>(lo),
                   order.begin() + static_cast<std::ptrdiff_t>(split),
                   order.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](PointIndex a, PointIndex b) {
                     const auto ca = coord_of(a);
                     const auto cb = coord_of(b);
                     if (ca != cb) return ca < cb;
                     return a < b;  // deterministic tiebreak
                   });

  bisect(lattice, order, lo, split, rank_lo, ranks_a, owner);
  bisect(lattice, order, split, hi, rank_lo + ranks_a, ranks_b, owner);
}

}  // namespace

Partition bisection_partition(const lbm::SparseLattice& lattice, int n_ranks) {
  HEMO_EXPECTS(n_ranks >= 1);
  const auto n = static_cast<std::size_t>(lattice.size());
  HEMO_EXPECTS(static_cast<std::size_t>(n_ranks) <= n);

  std::vector<PointIndex> order(n);
  std::iota(order.begin(), order.end(), PointIndex{0});

  Partition p;
  p.n_ranks = n_ranks;
  p.owner.assign(n, 0);
  bisect(lattice, order, 0, n, 0, n_ranks, p.owner);
  return p;
}

Partition bisection_partition(const lbm::SparseLattice& lattice,
                              int n_ranks_total,
                              const std::vector<Rank>& survivors) {
  HEMO_EXPECTS(n_ranks_total >= 1);
  HEMO_EXPECTS(!survivors.empty());
  HEMO_EXPECTS(survivors.size() <= static_cast<std::size_t>(n_ranks_total));
  for (std::size_t k = 0; k < survivors.size(); ++k) {
    HEMO_EXPECTS(survivors[k] >= 0 && survivors[k] < n_ranks_total);
    HEMO_EXPECTS(k == 0 || survivors[k - 1] < survivors[k]);
  }

  // Bisect into survivors.size() dense parts, then relabel part k with the
  // k-th survivor's original rank id.  Identical point geometry to a plain
  // bisection over the survivor count, so determinism and balance carry
  // over unchanged.
  Partition dense = bisection_partition(
      lattice, static_cast<int>(survivors.size()));
  Partition p;
  p.n_ranks = n_ranks_total;
  p.owner.resize(dense.owner.size());
  for (std::size_t i = 0; i < dense.owner.size(); ++i)
    p.owner[i] = survivors[static_cast<std::size_t>(dense.owner[i])];
  return p;
}

std::int64_t HaloPlan::total_values() const {
  std::int64_t total = 0;
  for (const HaloMessage& m : messages) total += m.values;
  return total;
}

std::vector<HaloMessage> HaloPlan::sends_of(Rank r) const {
  std::vector<HaloMessage> out;
  for (const HaloMessage& m : messages)
    if (m.src == r) out.push_back(m);
  return out;
}

std::int64_t HaloPlan::max_rank_send_values(int n_ranks) const {
  std::vector<std::int64_t> totals(static_cast<std::size_t>(n_ranks), 0);
  for (const HaloMessage& m : messages)
    totals[static_cast<std::size_t>(m.src)] += m.values;
  return totals.empty() ? 0
                        : *std::max_element(totals.begin(), totals.end());
}

HaloPlan build_halo_plan(const lbm::SparseLattice& lattice,
                         const Partition& partition) {
  HEMO_EXPECTS(partition.owner.size() ==
               static_cast<std::size_t>(lattice.size()));

  std::map<std::pair<Rank, Rank>, std::int64_t> volume;
  for (PointIndex i = 0; i < lattice.size(); ++i) {
    const Rank dst = partition.owner[static_cast<std::size_t>(i)];
    for (int q = 1; q < lbm::kQ; ++q) {
      const PointIndex up = lattice.neighbor(q, i);
      if (up == kSolidNeighbor) continue;
      const Rank src = partition.owner[static_cast<std::size_t>(up)];
      if (src != dst) ++volume[{src, dst}];
    }
  }

  HaloPlan plan;
  plan.messages.reserve(volume.size());
  for (const auto& [pair, values] : volume)
    plan.messages.push_back(HaloMessage{pair.first, pair.second, values});
  return plan;
}

}  // namespace hemo::decomp
