#include "comm/network.hpp"

#include "base/contracts.hpp"

namespace hemo::comm {

Network::Network(int n_ranks) : n_ranks_(n_ranks) {
  HEMO_EXPECTS(n_ranks >= 1);
}

void Network::send(Rank src, Rank dst, std::vector<double> payload) {
  HEMO_EXPECTS(src >= 0 && src < n_ranks_);
  HEMO_EXPECTS(dst >= 0 && dst < n_ranks_);
  HEMO_EXPECTS(src != dst);
  ledger_.push_back(MessageRecord{
      src, dst,
      static_cast<std::int64_t>(payload.size() * sizeof(double))});
  in_flight_[{src, dst}].push_back(std::move(payload));
}

std::vector<double> Network::receive(Rank dst, Rank src) {
  auto it = in_flight_.find({src, dst});
  HEMO_EXPECTS(it != in_flight_.end() && !it->second.empty());
  std::vector<double> payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) in_flight_.erase(it);
  return payload;
}

bool Network::drained() const { return in_flight_.empty(); }

std::int64_t Network::total_bytes() const {
  std::int64_t total = 0;
  for (const MessageRecord& m : ledger_) total += m.bytes;
  return total;
}

}  // namespace hemo::comm
