#include "comm/network.hpp"

#include <sstream>

#include "base/contracts.hpp"

namespace hemo::comm {

namespace {

std::string describe_recv_error(RecvError::Kind kind, Rank src, Rank dst,
                                std::size_t expected, std::size_t got) {
  std::ostringstream msg;
  if (kind == RecvError::Kind::kMissing) {
    msg << "no message pending from rank " << src << " to rank " << dst;
  } else {
    msg << "message from rank " << src << " to rank " << dst << " carries "
        << got << " values, expected " << expected;
  }
  return msg.str();
}

}  // namespace

RecvError::RecvError(Kind kind, Rank src, Rank dst, std::size_t expected,
                     std::size_t got)
    : std::runtime_error(describe_recv_error(kind, src, dst, expected, got)),
      kind_(kind),
      src_(src),
      dst_(dst),
      expected_(expected),
      got_(got) {}

Network::Network(int n_ranks) : n_ranks_(n_ranks) {
  HEMO_EXPECTS(n_ranks >= 1);
}

void Network::send(Rank src, Rank dst, std::vector<double> payload) {
  HEMO_EXPECTS(src >= 0 && src < n_ranks_);
  HEMO_EXPECTS(dst >= 0 && dst < n_ranks_);
  HEMO_EXPECTS(src != dst);
  ledger_.push_back(MessageRecord{
      src, dst,
      static_cast<std::int64_t>(payload.size() * sizeof(double))});
  in_flight_[{src, dst}].push_back(std::move(payload));
}

std::vector<double> Network::receive(Rank dst, Rank src) {
  auto it = in_flight_.find({src, dst});
  if (it == in_flight_.end() || it->second.empty())
    throw RecvError(RecvError::Kind::kMissing, src, dst, 0, 0);
  std::vector<double> payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) in_flight_.erase(it);
  return payload;
}

std::vector<double> Network::receive(Rank dst, Rank src,
                                     std::size_t expected_values) {
  std::vector<double> payload = receive(dst, src);
  if (payload.size() != expected_values)
    throw RecvError(RecvError::Kind::kWrongSize, src, dst, expected_values,
                    payload.size());
  return payload;
}

std::int64_t Network::pending(Rank dst, Rank src) const {
  const auto it = in_flight_.find({src, dst});
  return it == in_flight_.end() ? 0
                                : static_cast<std::int64_t>(it->second.size());
}

bool Network::drained() const { return in_flight_.empty(); }

void Network::reset() { in_flight_.clear(); }

std::int64_t Network::total_bytes() const {
  std::int64_t total = 0;
  for (const MessageRecord& m : ledger_) total += m.bytes;
  return total;
}

}  // namespace hemo::comm
