#pragma once
// In-process message-passing substrate.  Provides MPI-style rank-to-rank
// message semantics (matched FIFO sends/receives per ordered rank pair)
// for the distributed solver, plus a ledger of every message so the
// cluster simulator and the tests can audit communication volumes against
// the halo plan.
//
// Receive failures are *recoverable*: a missing or mis-sized message is a
// communication fault, not a programmer error, so receive() throws a typed
// RecvError that callers (the resilient halo exchange, the chaos harness)
// can catch and react to — retransmit, roll back, or fail structurally —
// instead of aborting the process.
//
// The class is polymorphic so fault-injection decorators
// (hemo::resilience::FaultyNetwork) can interpose on the wire.

#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hpp"

namespace hemo::comm {

struct MessageRecord {
  Rank src = 0;
  Rank dst = 0;
  std::int64_t bytes = 0;
};

/// A receive that could not be satisfied: either no message is pending on
/// the (src, dst) channel (dropped, delayed, or stalled sender) or the
/// message that arrived does not carry the expected number of values
/// (truncated or overfull frame).  Thrown instead of aborting so the halo
/// exchange can retransmit or roll back.
class RecvError : public std::runtime_error {
 public:
  enum class Kind { kMissing, kWrongSize };

  RecvError(Kind kind, Rank src, Rank dst, std::size_t expected,
            std::size_t got);

  Kind kind() const { return kind_; }
  Rank src() const { return src_; }
  Rank dst() const { return dst_; }
  std::size_t expected() const { return expected_; }
  std::size_t got() const { return got_; }

 private:
  Kind kind_;
  Rank src_;
  Rank dst_;
  std::size_t expected_;
  std::size_t got_;
};

class Network {
 public:
  explicit Network(int n_ranks);
  virtual ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int n_ranks() const { return n_ranks_; }

  /// Posts a message; payloads are doubles, as all halo traffic is
  /// distribution values.
  virtual void send(Rank src, Rank dst, std::vector<double> payload);

  /// Pops the oldest pending message from src to dst.  Throws RecvError
  /// (kMissing) when none is pending — a dropped or late message must be
  /// recoverable, not fatal.
  virtual std::vector<double> receive(Rank dst, Rank src);

  /// Receive with a size contract: the popped message must carry exactly
  /// `expected_values` doubles, or RecvError (kWrongSize) is thrown.  The
  /// mis-sized message is consumed (it arrived; it is just unusable), so
  /// the caller can request a retransmission on a clean channel.
  std::vector<double> receive(Rank dst, Rank src, std::size_t expected_values);

  /// Messages currently queued from src to dst (decorators may include
  /// delayed or stalled traffic that has not yet reached the channel).
  virtual std::int64_t pending(Rank dst, Rank src) const;

  /// True when no messages are in flight (every send was received).
  virtual bool drained() const;

  /// Called by the solver at the top of every halo exchange with the
  /// current step number.  A plain network ignores it; fault-injecting
  /// decorators key their schedules on it.
  virtual void begin_step(std::int64_t step) { (void)step; }

  /// Discards all in-flight traffic (decorators also drop any held or
  /// delayed messages).  Used when rolling back to a checkpoint: traffic
  /// from the abandoned step must not leak into the replay.  The ledger is
  /// preserved — it is a record of what the wire carried, not solver state.
  virtual void reset();

  const std::vector<MessageRecord>& ledger() const { return ledger_; }
  std::int64_t total_bytes() const;
  std::int64_t message_count() const {
    return static_cast<std::int64_t>(ledger_.size());
  }
  void clear_ledger() { ledger_.clear(); }

 private:
  int n_ranks_;
  std::map<std::pair<Rank, Rank>, std::deque<std::vector<double>>> in_flight_;
  std::vector<MessageRecord> ledger_;
};

}  // namespace hemo::comm
