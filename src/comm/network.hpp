#pragma once
// In-process message-passing substrate.  Provides MPI-style rank-to-rank
// message semantics (matched FIFO sends/receives per ordered rank pair)
// for the distributed solver, plus a ledger of every message so the
// cluster simulator and the tests can audit communication volumes against
// the halo plan.

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "base/types.hpp"

namespace hemo::comm {

struct MessageRecord {
  Rank src = 0;
  Rank dst = 0;
  std::int64_t bytes = 0;
};

class Network {
 public:
  explicit Network(int n_ranks);

  int n_ranks() const { return n_ranks_; }

  /// Posts a message; payloads are doubles, as all halo traffic is
  /// distribution values.
  void send(Rank src, Rank dst, std::vector<double> payload);

  /// Pops the oldest pending message from src to dst.  Precondition: one
  /// is pending (the halo plan guarantees matched pairs).
  std::vector<double> receive(Rank dst, Rank src);

  /// True when no messages are in flight (every send was received).
  bool drained() const;

  const std::vector<MessageRecord>& ledger() const { return ledger_; }
  std::int64_t total_bytes() const;
  std::int64_t message_count() const {
    return static_cast<std::int64_t>(ledger_.size());
  }
  void clear_ledger() { ledger_.clear(); }

 private:
  int n_ranks_;
  std::map<std::pair<Rank, Rank>, std::deque<std::vector<double>>> in_flight_;
  std::vector<MessageRecord> ledger_;
};

}  // namespace hemo::comm
