#pragma once
// Deterministic fault schedules for chaos testing the distributed solver.
// A FaultPlan is a list of FaultEvents keyed by (step, src rank, dst rank);
// the FaultyNetwork decorator consults it on every send/receive and marks
// events as fired when applied.  Events are one-shot: a rollback that
// replays a step does not re-trigger the fault it recovered from, exactly
// like a transient soft fault in a real interconnect.
//
// Plans are seeded and fully deterministic (SplitMix64), so a chaos run is
// reproducible bit-for-bit from its seed — the property the hemo_chaos
// survival report and the CI chaos-smoke gate rely on.

#include <cstdint>
#include <string_view>
#include <vector>

#include "base/types.hpp"

namespace hemo::resilience {

enum class FaultKind {
  kDrop = 0,   // message vanishes on the wire
  kDuplicate,  // message is delivered twice
  kCorrupt,    // one payload double gets its bits flipped
  kDelay,      // message arrives one receive-poll late (reordering)
  kTruncate,   // message loses its tail values
  kStall,      // a rank stops sending for several polls
  kRankDeath,  // a rank dies PERMANENTLY: all of its traffic black-holed
               // from the event step onward (never clears, survives
               // rollbacks) — the failure mode shrink-recovery targets
  kBitFlip,    // in-memory SDC: one bit of one live distribution slot is
               // flipped at the start of the event step.  Applied by the
               // SOLVER (set_fault_injection), not the network — the wire
               // never sees it; only the SDC sentinel can.  One-shot and
               // rollback-surviving like the transient kinds.
};

/// The transient (one-shot) kinds: what "--kinds all" and random chaos
/// plans draw from.  kRankDeath is deliberately excluded — a permanent
/// kill changes the run's decomposition and is opted into explicitly
/// (hemo_chaos --kill-rank, FaultPlan::kill_rank).  kBitFlip is excluded
/// for the same reason: it is not a network fault at all, and is opted
/// into via hemo_chaos --sdc / FaultPlan::bit_flips.
inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kDrop,     FaultKind::kDuplicate, FaultKind::kCorrupt,
    FaultKind::kDelay,    FaultKind::kTruncate,  FaultKind::kStall};

std::string_view fault_kind_name(FaultKind kind);

/// Parses "drop", "corrupt", ... back into a kind; returns false on an
/// unknown name.
bool parse_fault_kind(std::string_view name, FaultKind* out);

struct FaultEvent {
  std::int64_t step = 0;  // solver step the event triggers on
  Rank src = 0;           // sending rank (the stalled rank for kStall)
  Rank dst = 0;           // receiving rank (ignored for kStall)
  FaultKind kind = FaultKind::kDrop;

  // Kind-specific parameters.
  int payload_index = 0;                       // kCorrupt: value to damage
  std::uint64_t xor_mask = 0x7FF0000000000000ull;  // kCorrupt: bit flips
  int truncate_by = 1;                         // kTruncate: values removed
  int stall_polls = 1;  // kStall: receive polls the rank stays silent for

  // kBitFlip parameters: which GLOBAL lattice point, which of its kQ
  // distribution slots, and which of the 64 bits to flip.  The injecting
  // solver resolves the global point to (owner rank, local slot) at fire
  // time and records the ground truth below, so a chaos harness can score
  // the sentinel's localization against what actually happened.
  std::int64_t flip_point = 0;  // global point index
  int flip_q = 0;               // distribution direction [0, kQ)
  int flip_bit = 0;             // bit position [0, 64)
  Rank fired_rank = -1;         // owner rank the flip landed on
  std::int64_t fired_tile = -1;  // digest tile (local index / tile_points)

  bool fired = false;  // set by the network when the event is applied
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Seeded random plan: `events_per_kind` events of each requested kind,
  /// spread over steps [0, steps) and the given communicating (src, dst)
  /// edges.  Deterministic in all arguments.
  static FaultPlan random(std::uint64_t seed, std::int64_t steps,
                          const std::vector<std::pair<Rank, Rank>>& edges,
                          const std::vector<FaultKind>& kinds,
                          int events_per_kind);

  void add(const FaultEvent& event) { events_.push_back(event); }

  /// Convenience: schedules a permanent kRankDeath of `rank` at `step`.
  void kill_rank(Rank rank, std::int64_t step);

  /// Seeded in-memory SDC campaign: `count` kBitFlip events, each picking
  /// a step in [0, steps), a global point in [0, n_points), a direction in
  /// [0, kQ) and a bit in [0, 64).  Low mantissa bits through the sign bit
  /// are all fair game — the sentinel digests exact bit patterns, so even
  /// a flip of the lowest mantissa bit must be caught.  Deterministic in
  /// all arguments.
  static FaultPlan bit_flips(std::uint64_t seed, std::int64_t steps,
                             std::int64_t n_points, int count);

  /// First unfired non-stall transient event matching a send on
  /// (step, src, dst), or nullptr.  Does not mark the event fired — the
  /// network does, once the fault is actually applied.  kBitFlip events
  /// are never matched here: they are solver-side, not wire-side.
  FaultEvent* match_send(std::int64_t step, Rank src, Rank dst);

  /// First unfired kBitFlip event scheduled for exactly this step, or
  /// nullptr.  The injecting solver marks it fired once the bit is
  /// flipped; the fired flag survives rollback (the replayed step does
  /// not re-corrupt), matching the network kinds' one-shot semantics.
  FaultEvent* match_bit_flip(std::int64_t step);

  /// First unfired stall event for the sending rank at this step.
  FaultEvent* match_stall(std::int64_t step, Rank src);

  /// First unfired kRankDeath event whose step has been reached (event
  /// step <= `step` — a permanent kill does not need traffic on its exact
  /// step to take effect).  nullptr when no rank is due to die.
  FaultEvent* match_rank_death(std::int64_t step);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::vector<FaultEvent>& events() { return events_; }

  int total() const { return static_cast<int>(events_.size()); }
  int count(FaultKind kind) const;
  int fired_count() const;
  int fired_count(FaultKind kind) const;
  /// Events that never triggered (their step/edge saw no traffic).
  int unfired_count() const { return total() - fired_count(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace hemo::resilience
