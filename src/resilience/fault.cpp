#include "resilience/fault.hpp"

#include "base/contracts.hpp"
#include "base/rng.hpp"
#include "lbm/d3q19.hpp"

namespace hemo::resilience {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kStall: return "stall";
    case FaultKind::kRankDeath: return "rank-death";
    case FaultKind::kBitFlip: return "bit-flip";
  }
  return "?";
}

bool parse_fault_kind(std::string_view name, FaultKind* out) {
  for (const FaultKind kind : kAllFaultKinds) {
    if (name == fault_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  for (const FaultKind kind : {FaultKind::kRankDeath, FaultKind::kBitFlip}) {
    if (name == fault_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

void FaultPlan::kill_rank(Rank rank, std::int64_t step) {
  FaultEvent e;
  e.kind = FaultKind::kRankDeath;
  e.step = step;
  e.src = rank;
  events_.push_back(e);
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::int64_t steps,
                            const std::vector<std::pair<Rank, Rank>>& edges,
                            const std::vector<FaultKind>& kinds,
                            int events_per_kind) {
  HEMO_EXPECTS(steps >= 1);
  HEMO_EXPECTS(!edges.empty());
  HEMO_EXPECTS(events_per_kind >= 0);
  SplitMix64 rng(seed);
  FaultPlan plan;
  for (const FaultKind kind : kinds) {
    for (int k = 0; k < events_per_kind; ++k) {
      FaultEvent e;
      e.kind = kind;
      e.step = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(steps)));
      const auto& edge = edges[rng.next_below(edges.size())];
      e.src = edge.first;
      e.dst = edge.second;
      switch (kind) {
        case FaultKind::kCorrupt:
          e.payload_index = static_cast<int>(rng.next_below(64));
          // Flip one high exponent bit and one mantissa bit: large enough
          // to be visible, small enough to exercise the CRC (not only the
          // NaN scan).
          e.xor_mask = (1ull << (52 + rng.next_below(11))) |
                       (1ull << rng.next_below(52));
          break;
        case FaultKind::kTruncate:
          e.truncate_by = 1 + static_cast<int>(rng.next_below(4));
          break;
        case FaultKind::kStall:
          // 1-6 silent polls: short stalls recover by waiting/retransmit,
          // long ones exhaust the budget and exercise the rollback path.
          e.stall_polls = 1 + static_cast<int>(rng.next_below(6));
          break;
        case FaultKind::kBitFlip:
          // random() knows the communication graph, not the lattice
          // extent, so the flip stays on global point 0; direction and
          // bit are drawn.  bit_flips() below is the real SDC campaign.
          e.flip_q = static_cast<int>(rng.next_below(lbm::kQ));
          e.flip_bit = static_cast<int>(rng.next_below(64));
          break;
        default:
          break;
      }
      plan.add(e);
    }
  }
  return plan;
}

FaultPlan FaultPlan::bit_flips(std::uint64_t seed, std::int64_t steps,
                               std::int64_t n_points, int count) {
  HEMO_EXPECTS(steps >= 1);
  HEMO_EXPECTS(n_points >= 1);
  HEMO_EXPECTS(count >= 0);
  SplitMix64 rng(seed);
  FaultPlan plan;
  for (int k = 0; k < count; ++k) {
    FaultEvent e;
    e.kind = FaultKind::kBitFlip;
    e.step = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(steps)));
    e.flip_point = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n_points)));
    e.flip_q = static_cast<int>(rng.next_below(lbm::kQ));
    e.flip_bit = static_cast<int>(rng.next_below(64));
    plan.add(e);
  }
  return plan;
}

FaultEvent* FaultPlan::match_send(std::int64_t step, Rank src, Rank dst) {
  for (FaultEvent& e : events_) {
    if (e.fired || e.kind == FaultKind::kStall ||
        e.kind == FaultKind::kRankDeath || e.kind == FaultKind::kBitFlip)
      continue;
    if (e.step == step && e.src == src && e.dst == dst) return &e;
  }
  return nullptr;
}

FaultEvent* FaultPlan::match_bit_flip(std::int64_t step) {
  for (FaultEvent& e : events_) {
    if (e.fired || e.kind != FaultKind::kBitFlip) continue;
    if (e.step == step) return &e;
  }
  return nullptr;
}

FaultEvent* FaultPlan::match_rank_death(std::int64_t step) {
  for (FaultEvent& e : events_) {
    if (e.fired || e.kind != FaultKind::kRankDeath) continue;
    if (e.step <= step) return &e;
  }
  return nullptr;
}

FaultEvent* FaultPlan::match_stall(std::int64_t step, Rank src) {
  for (FaultEvent& e : events_) {
    if (e.fired || e.kind != FaultKind::kStall) continue;
    if (e.step == step && e.src == src) return &e;
  }
  return nullptr;
}

int FaultPlan::count(FaultKind kind) const {
  int n = 0;
  for (const FaultEvent& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

int FaultPlan::fired_count() const {
  int n = 0;
  for (const FaultEvent& e : events_)
    if (e.fired) ++n;
  return n;
}

int FaultPlan::fired_count(FaultKind kind) const {
  int n = 0;
  for (const FaultEvent& e : events_)
    if (e.fired && e.kind == kind) ++n;
  return n;
}

}  // namespace hemo::resilience
