#pragma once
// FaultyNetwork: a fault-injecting decorator over comm::Network.  It sits
// between the distributed solver and the wire, consulting a FaultPlan on
// every send and receive:
//
//   drop       the message never reaches the channel
//   duplicate  the message is delivered twice (stale straggler)
//   corrupt    one payload double gets bits flipped in flight
//   delay      the message is released only after one failed poll
//              (arrives late, after any retransmission — reordering)
//   truncate   the message loses its tail values
//   stall      the sending rank goes silent: its messages are held and
//              every receive from it fails for `stall_polls` polls
//   rank-death the rank dies PERMANENTLY: every send from or to it is
//              black-holed and every receive from it fails, forever —
//              death survives rollbacks and network resets
//
// Transient faults are one-shot (the plan marks them fired), so a
// rollback/replay does not re-encounter the fault it just recovered from —
// the semantics of a transient soft error.  A kRankDeath event is the
// opposite: once its step is reached the rank never comes back, which is
// what escalates the solver's recovery ladder into shrink-to-survivors
// re-decomposition.  All bookkeeping is deterministic.

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "comm/network.hpp"
#include "resilience/fault.hpp"

namespace hemo::resilience {

/// Counters of what the decorator actually did to the wire.
struct FaultLog {
  std::int64_t dropped = 0;
  std::int64_t duplicated = 0;
  std::int64_t corrupted = 0;
  std::int64_t delayed = 0;
  std::int64_t truncated = 0;
  std::int64_t stall_held = 0;   // messages held while a rank was silent
  std::int64_t stall_polls = 0;  // receive polls answered with "missing"
  std::int64_t death_swallowed = 0;  // messages black-holed by a dead rank
  std::int64_t death_polls = 0;  // receives from a dead rank denied

  /// Transient injections only: permanent-death traffic loss is accounted
  /// separately (death_swallowed) because it is unbounded by design — a
  /// dead rank swallows traffic until the solver shrinks around it.
  std::int64_t total_injected() const {
    return dropped + duplicated + corrupted + delayed + truncated +
           stall_held;
  }
};

class FaultyNetwork final : public comm::Network {
 public:
  FaultyNetwork(int n_ranks, FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  FaultPlan& plan() { return plan_; }
  const FaultLog& log() const { return log_; }
  std::int64_t current_step() const { return step_; }

  /// Permanently dead ranks, in death order.  Populated when kRankDeath
  /// events reach their step; never shrinks (death is forever).
  const std::vector<Rank>& dead_ranks() const { return dead_; }
  bool is_dead(Rank r) const;

  void begin_step(std::int64_t step) override;
  void send(Rank src, Rank dst, std::vector<double> payload) override;
  using comm::Network::receive;  // keep the size-checked overload visible
  std::vector<double> receive(Rank dst, Rank src) override;
  std::int64_t pending(Rank dst, Rank src) const override;
  bool drained() const override;
  void reset() override;

 private:
  struct Stall {
    bool active = false;
    Rank rank = -1;
    int polls_left = 0;
    // Messages the silent rank "sent" but that are still in its NIC queue;
    // flushed in order when the stall clears.
    std::deque<std::pair<Rank, std::vector<double>>> held;  // (dst, payload)
  };

  void maybe_clear_stall(Rank src);
  void apply_due_deaths();

  std::int64_t step_ = 0;
  FaultPlan plan_;
  FaultLog log_;
  std::map<std::pair<Rank, Rank>, std::deque<std::vector<double>>> delayed_;
  Stall stall_;
  std::vector<Rank> dead_;  // permanent; survives reset()
};

}  // namespace hemo::resilience
