#include "resilience/faulty_network.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace hemo::resilience {

FaultyNetwork::FaultyNetwork(int n_ranks, FaultPlan plan)
    : comm::Network(n_ranks), plan_(std::move(plan)) {}

bool FaultyNetwork::is_dead(Rank r) const {
  return std::find(dead_.begin(), dead_.end(), r) != dead_.end();
}

void FaultyNetwork::begin_step(std::int64_t step) {
  step_ = step;
  apply_due_deaths();
}

void FaultyNetwork::apply_due_deaths() {
  while (FaultEvent* death = plan_.match_rank_death(step_)) {
    death->fired = true;
    const Rank r = death->src;
    if (is_dead(r)) continue;
    dead_.push_back(r);
    // The dead device's NIC queues die with it: anything it was holding
    // (stalled or delayed) is gone.  Traffic it sent earlier that already
    // reached the wire stays deliverable, like a real in-flight packet.
    if (stall_.active && stall_.rank == r) {
      log_.death_swallowed += static_cast<std::int64_t>(stall_.held.size());
      stall_ = Stall{};
    }
    for (auto it = delayed_.begin(); it != delayed_.end();) {
      if (it->first.first == r) {
        log_.death_swallowed += static_cast<std::int64_t>(it->second.size());
        it = delayed_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void FaultyNetwork::send(Rank src, Rank dst, std::vector<double> payload) {
  // A permanently dead rank neither sends nor listens: traffic from it
  // never reaches the wire, and traffic to it lands in a void.  Unlike a
  // stall there is no held queue — the device is gone.
  apply_due_deaths();
  if (is_dead(src) || is_dead(dst)) {
    ++log_.death_swallowed;
    return;
  }
  // A silent rank enqueues locally instead of reaching the wire.  This
  // also swallows retransmissions issued on the stalled rank's behalf —
  // the rank is down, nobody can repack for it — which is what eventually
  // escalates the receiver to a rollback.
  if (stall_.active && stall_.rank == src) {
    stall_.held.emplace_back(dst, std::move(payload));
    ++log_.stall_held;
    return;
  }
  if (FaultEvent* stall = plan_.match_stall(step_, src)) {
    stall->fired = true;
    stall_.active = true;
    stall_.rank = src;
    stall_.polls_left = stall->stall_polls;
    stall_.held.emplace_back(dst, std::move(payload));
    ++log_.stall_held;
    return;
  }

  FaultEvent* e = plan_.match_send(step_, src, dst);
  if (e == nullptr) {
    Network::send(src, dst, std::move(payload));
    return;
  }
  e->fired = true;
  switch (e->kind) {
    case FaultKind::kDrop:
      ++log_.dropped;
      return;  // lost on the wire
    case FaultKind::kDuplicate: {
      ++log_.duplicated;
      std::vector<double> copy = payload;
      Network::send(src, dst, std::move(copy));
      Network::send(src, dst, std::move(payload));
      return;
    }
    case FaultKind::kCorrupt: {
      ++log_.corrupted;
      if (!payload.empty()) {
        auto& slot = payload[static_cast<std::size_t>(e->payload_index) %
                             payload.size()];
        std::uint64_t bits = 0;
        std::memcpy(&bits, &slot, sizeof bits);
        bits ^= e->xor_mask;
        std::memcpy(&slot, &bits, sizeof slot);
      }
      Network::send(src, dst, std::move(payload));
      return;
    }
    case FaultKind::kDelay:
      ++log_.delayed;
      delayed_[{src, dst}].push_back(std::move(payload));
      return;
    case FaultKind::kTruncate: {
      ++log_.truncated;
      const std::size_t cut =
          std::min(payload.size(), static_cast<std::size_t>(e->truncate_by));
      payload.resize(payload.size() - cut);
      Network::send(src, dst, std::move(payload));
      return;
    }
    case FaultKind::kStall:
    case FaultKind::kRankDeath:
    case FaultKind::kBitFlip:  // solver-side, never matched on a send
      break;  // handled elsewhere; unreachable through match_send
  }
}

void FaultyNetwork::maybe_clear_stall(Rank src) {
  if (!stall_.active || stall_.rank != src) return;
  ++log_.stall_polls;
  if (--stall_.polls_left > 0) return;
  // The rank comes back: its NIC queue drains onto the wire in order.
  stall_.active = false;
  while (!stall_.held.empty()) {
    auto [dst, payload] = std::move(stall_.held.front());
    stall_.held.pop_front();
    Network::send(stall_.rank, dst, std::move(payload));
  }
}

std::vector<double> FaultyNetwork::receive(Rank dst, Rank src) {
  apply_due_deaths();
  if (is_dead(src) && Network::pending(dst, src) == 0) {
    // Nothing will ever arrive from a dead rank again; only traffic that
    // reached the wire before death remains deliverable.
    ++log_.death_polls;
    throw comm::RecvError(comm::RecvError::Kind::kMissing, src, dst, 0, 0);
  }
  if (stall_.active && stall_.rank == src) {
    maybe_clear_stall(src);
    if (stall_.active)
      throw comm::RecvError(comm::RecvError::Kind::kMissing, src, dst, 0, 0);
  }
  if (Network::pending(dst, src) == 0) {
    const auto it = delayed_.find({src, dst});
    if (it != delayed_.end() && !it->second.empty()) {
      // The late message hits the wire now but is only *visible* on the
      // next poll, after any retransmission was already posted: classic
      // reordering.
      std::vector<double> payload = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) delayed_.erase(it);
      Network::send(src, dst, std::move(payload));
      throw comm::RecvError(comm::RecvError::Kind::kMissing, src, dst, 0, 0);
    }
  }
  return Network::receive(dst, src);
}

std::int64_t FaultyNetwork::pending(Rank dst, Rank src) const {
  std::int64_t n = Network::pending(dst, src);
  const auto it = delayed_.find({src, dst});
  if (it != delayed_.end()) n += static_cast<std::int64_t>(it->second.size());
  if (stall_.active && stall_.rank == src)
    for (const auto& [held_dst, payload] : stall_.held)
      if (held_dst == dst) ++n;
  return n;
}

bool FaultyNetwork::drained() const {
  return Network::drained() && delayed_.empty() &&
         (!stall_.active || stall_.held.empty());
}

void FaultyNetwork::reset() {
  // Deliberately does NOT clear dead_: a rollback replays the step, but a
  // permanently dead rank stays dead through the replay — that is exactly
  // the persistence that distinguishes kRankDeath from a transient stall.
  Network::reset();
  delayed_.clear();
  stall_ = Stall{};
}

}  // namespace hemo::resilience
