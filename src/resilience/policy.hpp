#pragma once
// Detection and recovery policies for the resilient distributed solver.
//
// Detection (HealthPolicy): per-step numerical-health guards — non-finite
// scan, mass-drift tolerance, velocity-magnitude ceiling, halo traffic
// audit — surfaced as analysis::Diagnostic records with RS### rule ids.
//
// Recovery (RecoveryPolicy + ShrinkPolicy): the escalation ladder the
// solver walks when a step goes wrong:
//     retransmit the halo  ->  roll back to a checkpoint
//       ->  declare the silent rank dead and shrink onto the survivors
//       ->  SolverFault.
// Every rung is bounded, so a persistent fault degrades into a *structured*
// failure the campaign layer can retry or resume from a checkpoint —
// never an abort.  The shrink rung (opt-in) handles the one fault the
// transient ladder cannot: a device that is permanently gone.
//
// Threshold scaling: tolerances are functions of lattice size and step
// count, not constants — see DESIGN.md ("Why detection thresholds scale
// with lattice size and step count").

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "base/types.hpp"

namespace hemo::resilience {

// ---------------------------------------------------------------------------
// Detection.
// ---------------------------------------------------------------------------

/// Rule ids used by the health guards (same Diagnostic plumbing as the
/// hemo-lint LC/HL rules):
///   RS001 non-finite distribution value        (error)
///   RS002 global mass drift beyond tolerance   (error)
///   RS003 velocity-magnitude ceiling exceeded  (error)
///   RS004 halo traffic disagrees with the plan (warning; auto-recovered)
///   RS005 rank declared dead; domain shrunk    (warning; auto-recovered
///                                               onto the survivors)
///   RS006 silent data corruption in a tile     (error; rolled back, or
///                                               the rank quarantined)
struct HealthPolicy {
  bool scan_nonfinite = true;

  /// Mass guard.  For open systems (inlet/outlet), mass changes physically
  /// every step by the boundary fluxes, so the guard bounds the *relative
  /// per-step jump*: a blow-up or an exponent-flip corruption moves total
  /// mass by orders of magnitude in one step, physics moves it by ~u*A/V.
  bool check_mass = true;
  double mass_step_rel = 0.05;

  /// For closed systems (periodic ends, body-force driven) collisions and
  /// bounce-back conserve mass to rounding, so the guard can instead hold
  /// total mass to the accumulated-rounding tolerance of
  /// conserved_mass_tolerance() — drift beyond it is corruption.
  bool closed_system = false;

  /// Compressibility ceiling: |u| must stay well below the lattice speed
  /// of sound (1/sqrt(3) ~ 0.577); production LBM keeps |u| < ~0.1, so
  /// 0.4 only fires on genuine blow-up.
  bool check_velocity = true;
  double max_velocity = 0.4;

  /// Audit each step's delivered halo messages (count and bytes) against
  /// the precomputed exchange plan; mismatches are recorded (RS004) and
  /// stragglers drained.
  bool audit_halo = true;
};

/// Absolute tolerance on |mass(t) - mass(0)| for a *closed* system of
/// `n_values` summed distribution values after `steps` steps.  Each of the
/// n_values additions in the mass reduction carries O(eps) relative error
/// and the per-step collision error accumulates as a random walk, hence
/// the sqrt(steps) factor; the leading constant absorbs the kQ-term
/// dot-products inside the kernel.  See DESIGN.md for the derivation.
inline double conserved_mass_tolerance(std::int64_t n_values,
                                       std::int64_t steps) {
  return 16.0 * std::numeric_limits<double>::epsilon() *
         static_cast<double>(n_values) *
         std::sqrt(static_cast<double>(steps + 1));
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

struct RecoveryPolicy {
  /// Halo-level: failed receives (missing, wrong size, CRC mismatch) are
  /// answered by repacking from the sender's intact state, up to this many
  /// times per exchange per step.
  int max_retransmits = 3;

  /// Step-level: how often to snapshot the full distribution state in
  /// memory, and how many rollbacks to grant before giving up.  A rollback
  /// restores the snapshot, resets the network, and replays.
  int checkpoint_interval = 8;
  int max_rollbacks = 4;

  /// Append a CRC-32 frame word to every halo message so in-flight
  /// corruption is detected at unpack time (and fixed by retransmission).
  /// Without frames, corruption is only caught by the numerical-health
  /// guards after it has entered the state — recoverable via rollback.
  bool checksum_frames = true;
};

/// Elastic shrink-recovery: the rung above rollback.  A deadline-based
/// failure detector watches for a rank whose outbound traffic has gone
/// completely silent (every receive from it exhausts the retransmit
/// budget with nothing arriving — not corruption, absence).  A rank that
/// stays uniquely suspect for `death_deadline` consecutive failed step
/// attempts — or that is still suspect when the rollback budget runs
/// out — is escalated from "transient" to "dead": the solver re-bisects
/// the domain over the survivors, redistributes the last checkpointed
/// state, and resumes.  Recovery is deterministic: the same kill schedule
/// produces bit-identical final state across reruns.
struct ShrinkPolicy {
  bool enabled = false;

  /// Consecutive failed attempts (original + rollback replays) blamed on
  /// the same unique rank before it is declared dead.  The first failure
  /// is always treated as transient (rollback + replay); a permanent
  /// death re-fails the replay immediately and hits the deadline.
  int death_deadline = 2;

  /// The solver refuses to shrink below this many live ranks and raises a
  /// SolverFault instead (a campaign may consider a 1-device "parallel"
  /// run meaningless, or keep going to the bitter end).
  int min_survivors = 1;
};

/// SDC sentinel (RS006): tile-granular detection of silent in-memory
/// corruption — the fault class the loud guards cannot see.  A flipped
/// mantissa bit in one distribution slot stays finite, locally plausible,
/// and below every RS001-RS003 threshold; the sentinel catches it by
/// digesting every tile's raw bit patterns at the end of each step and
/// verifying the digests before the next step consumes the state (once a
/// corrupted value streams into its neighbors it is consistent with every
/// later digest and undetectable by hashing).  A mismatch is localized to
/// {rank, tile, step} and escalated through the existing ladder: snapshot
/// rollback first, rank quarantine via the RS005 shrink path after
/// repeated hits on the same rank (a device whose memory keeps flipping
/// bits is failing, not unlucky).
struct SentinelPolicy {
  bool enabled = false;

  /// Points per digest tile — the localization granularity.  Smaller
  /// tiles localize more precisely and re-execute cheaper, at more
  /// digest-table overhead per step.
  std::int64_t tile_points = 256;

  /// Verify recorded digests every N steps.  1 (the default) checks every
  /// record/verify window and detects a flip before anything consumes it;
  /// larger intervals trade detection latency for overhead.  Digests are
  /// always verified before a snapshot is taken, so rollback targets are
  /// verified-clean at any interval.
  int check_interval = 1;

  /// Tiles per rank per step cross-checked by deterministic duplicate
  /// re-execution of stream_collide on a shadow buffer (two independent
  /// re-executions vote against the live result).  Catches compute SDC —
  /// a flip inside the arithmetic — which the memory digests cannot see
  /// because record happens after the corrupted result was written.
  /// 0 disables sampling.
  int reexec_sample = 0;

  /// RS006 detections attributed to one rank before it is quarantined
  /// through the shrink path (requires ShrinkPolicy::enabled and the
  /// survivor floor; otherwise the sentinel keeps rolling back).
  int quarantine_threshold = 3;
};

struct Options {
  HealthPolicy health;
  RecoveryPolicy recovery;
  ShrinkPolicy shrink;
  SentinelPolicy sentinel;
};

/// Localization record of one RS006 detection: which tile of which rank
/// mismatched its recorded digest, at which step, and how many steps the
/// corruption sat undetected (verify step minus record step; 0 means the
/// very next boundary caught it).
struct SdcDetection {
  Rank rank = -1;
  std::int64_t tile = -1;
  std::int64_t step = -1;          // step the mismatch was found at
  std::int64_t latency_steps = 0;  // step - digest record step
  bool reexec = false;  // found by duplicate re-execution, not a digest
};

/// Counters and detection records of a resilient run.
struct RunStats {
  std::int64_t recv_missing = 0;     // RecvError kMissing observed
  std::int64_t recv_wrong_size = 0;  // RecvError kWrongSize observed
  std::int64_t crc_mismatch = 0;     // frame checksum failures
  std::int64_t retransmits = 0;      // halo repack+resend actions
  std::int64_t stragglers_drained = 0;  // duplicate/late messages discarded
  std::int64_t halo_audit_mismatches = 0;  // RS004 detections
  std::int64_t health_errors = 0;    // RS001-RS003 detections
  std::int64_t rollbacks = 0;        // checkpoint restorations
  std::int64_t snapshots = 0;        // in-memory checkpoints taken

  // Shrink provenance (RS005): which ranks were declared permanently dead,
  // in death order, and where the run last re-decomposed and resumed.
  std::int64_t rank_deaths = 0;           // ranks escalated to dead
  std::int64_t shrinks = 0;               // successful re-decompositions
  std::vector<Rank> dead_ranks;           // death order
  std::int64_t last_recovery_step = -1;   // step the last shrink resumed at

  // SDC sentinel (RS006): tile digests verified, corruptions detected,
  // detections the sentinel itself retracted (a mismatch that did not
  // reproduce on immediate re-digest — checker fault, not state fault;
  // never escalated), and ranks quarantined after repeated detections.
  std::int64_t sdc_checks = 0;
  std::int64_t sdc_detected = 0;
  std::int64_t sdc_false_positive = 0;
  std::int64_t sdc_quarantines = 0;
  std::vector<SdcDetection> sdc_detections;  // occurrence order

  /// Detection records (RS### diagnostics), in occurrence order.
  std::vector<analysis::Diagnostic> diagnostics;

  std::int64_t faults_detected() const {
    return recv_missing + recv_wrong_size + crc_mismatch +
           halo_audit_mismatches + health_errors + rank_deaths +
           sdc_detected;
  }
  std::int64_t recoveries() const {
    return retransmits + stragglers_drained + rollbacks + shrinks;
  }
};

/// Structured failure of a resilient run: every rung of the recovery
/// ladder was exhausted.  Carries the diagnostics that condemned the step,
/// so the campaign layer can report *why* a point failed and decide to
/// resume it from its last on-disk checkpoint.
class SolverFault : public std::runtime_error {
 public:
  SolverFault(const std::string& what,
              std::vector<analysis::Diagnostic> diagnostics);

  const std::vector<analysis::Diagnostic>& diagnostics() const {
    return diagnostics_;
  }

 private:
  std::vector<analysis::Diagnostic> diagnostics_;
};

}  // namespace hemo::resilience
