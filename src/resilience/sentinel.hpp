#pragma once
// SDC sentinel: rolling tile-digest tables over live distribution arrays
// plus the layout-aware numerical-health scan, the detection machinery
// behind guard RS006 (see SentinelPolicy in resilience/policy.hpp for the
// escalation story).
//
// The protocol is record-then-verify: the owner records every tile's
// digest at the end of a step, after the state passed the health guards,
// and verifies them at the start of the next step, before anything reads
// the state.  In-memory corruption striking between the two — the only
// window in which the owner is not actively rewriting the slots — flips
// the digest of exactly one tile, which localizes the damage to
// {rank, tile, step} without any reference state.  A mismatch is
// re-digested once before it is reported: if the second pass agrees with
// the record after all, the *checker* glitched, not the state, and the
// detection is retracted as a false positive instead of triggering a
// rollback.
//
// The digests cover a rank's owned points only.  Ghost slots are
// legitimately rewritten by every halo exchange (and are CRC-framed on
// the wire already), so including them would turn every exchange into a
// false detection.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "base/types.hpp"
#include "lbm/tile_probe.hpp"
#include "resilience/policy.hpp"

namespace hemo::resilience {

class Sentinel {
 public:
  explicit Sentinel(SentinelPolicy policy);

  const SentinelPolicy& policy() const { return policy_; }

  /// One rank's live distribution array, as the digest loops see it.
  struct RankView {
    const double* f = nullptr;   // live SoA array (any LiveLayout)
    std::int64_t stride = 0;     // q-row stride (owned + ghost slots)
    std::int64_t owned = 0;      // points digested: indices [0, owned)
    lbm::LiveLayout layout = lbm::LiveLayout::kCanonical;
  };

  /// A tile whose digest no longer matches its record (confirmed by the
  /// second digest pass).
  struct Mismatch {
    Rank rank = -1;
    std::int64_t tile = -1;
    std::int64_t recorded_step = -1;
  };

  /// Drops every digest table and resizes for `n_ranks` ranks.  Called
  /// whenever the recorded digests can no longer describe the live state:
  /// enabling resilience, rollback, shrink re-decomposition, checkpoint
  /// restore.
  void reset(int n_ranks);

  /// (Re-)digests every tile of one rank's current state.
  void record(Rank r, const RankView& view, std::int64_t step);

  bool has_record(Rank r) const;
  std::int64_t recorded_step(Rank r) const;

  /// Verifies one rank against its recorded digests.  Confirmed
  /// mismatches are appended to `mismatches`; `checks` advances by the
  /// number of tiles compared and `false_positives` by the number of
  /// retracted (non-reproducing) mismatches.  A rank with no record
  /// verifies vacuously.
  void verify(Rank r, const RankView& view,
              std::vector<Mismatch>* mismatches, std::int64_t* checks,
              std::int64_t* false_positives) const;

  /// Tiles covering one rank's owned points.
  std::int64_t tiles_of(std::int64_t owned) const {
    return lbm::tile_count(owned, policy_.tile_points);
  }

 private:
  struct RankTable {
    std::vector<lbm::TileDigest> digests;
    std::int64_t step = -1;       // when the digests were recorded
    std::int64_t owned = 0;       // coverage the digests describe
    lbm::LiveLayout layout = lbm::LiveLayout::kCanonical;
  };

  SentinelPolicy policy_;
  std::vector<RankTable> tables_;
};

/// Layout-aware RS001/RS003 scan over a live distribution array: reads
/// each point's populations through the LiveLayout slot mapping, so a
/// corrupted slot in the live AA array is caught in place — before the
/// canonical-layout conversion (which does not read every slot) could
/// mask it.  `where` labels the diagnostics ("rank 3", "solver"); `step`
/// stamps the messages.  Emits the same diagnostics the distributed
/// solver's canonical-layout guards always produced.
std::vector<analysis::Diagnostic> scan_live_health(
    const double* f, std::int64_t stride, std::int64_t points,
    lbm::LiveLayout layout, const HealthPolicy& health, double force_x,
    double force_y, double force_z, std::int64_t step,
    const std::string& where);

}  // namespace hemo::resilience
