#include "resilience/policy.hpp"

#include <utility>

namespace hemo::resilience {

SolverFault::SolverFault(const std::string& what,
                         std::vector<analysis::Diagnostic> diagnostics)
    : std::runtime_error(what), diagnostics_(std::move(diagnostics)) {}

}  // namespace hemo::resilience
