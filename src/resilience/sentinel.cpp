#include "resilience/sentinel.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/contracts.hpp"
#include "lbm/kernels.hpp"

namespace hemo::resilience {

Sentinel::Sentinel(SentinelPolicy policy) : policy_(policy) {
  HEMO_EXPECTS(policy_.tile_points >= 1);
  HEMO_EXPECTS(policy_.check_interval >= 1);
  HEMO_EXPECTS(policy_.reexec_sample >= 0);
  HEMO_EXPECTS(policy_.quarantine_threshold >= 1);
}

void Sentinel::reset(int n_ranks) {
  HEMO_EXPECTS(n_ranks >= 0);
  tables_.assign(static_cast<std::size_t>(n_ranks), RankTable{});
}

void Sentinel::record(Rank r, const RankView& view, std::int64_t step) {
  HEMO_EXPECTS(r >= 0 && static_cast<std::size_t>(r) < tables_.size());
  RankTable& table = tables_[static_cast<std::size_t>(r)];
  table.digests = lbm::digest_tiles(view.f, view.stride, view.owned,
                                    policy_.tile_points, view.layout);
  table.step = step;
  table.owned = view.owned;
  table.layout = view.layout;
}

bool Sentinel::has_record(Rank r) const {
  return r >= 0 && static_cast<std::size_t>(r) < tables_.size() &&
         tables_[static_cast<std::size_t>(r)].step >= 0;
}

std::int64_t Sentinel::recorded_step(Rank r) const {
  return has_record(r) ? tables_[static_cast<std::size_t>(r)].step : -1;
}

void Sentinel::verify(Rank r, const RankView& view,
                      std::vector<Mismatch>* mismatches, std::int64_t* checks,
                      std::int64_t* false_positives) const {
  if (!has_record(r)) return;
  const RankTable& table = tables_[static_cast<std::size_t>(r)];
  // A record describing different coverage or a different layout cannot be
  // compared against the current state; treat it as absent rather than as
  // a wall of mismatches.  (The solver re-records after every transition
  // that changes either, so this only guards against misuse.)
  if (table.owned != view.owned || table.layout != view.layout) return;
  const std::int64_t tiles = tiles_of(view.owned);
  HEMO_EXPECTS(static_cast<std::int64_t>(table.digests.size()) == tiles);
  for (std::int64_t t = 0; t < tiles; ++t) {
    const std::int64_t begin = t * policy_.tile_points;
    const std::int64_t end = std::min(begin + policy_.tile_points, view.owned);
    const lbm::TileDigest now =
        lbm::tile_digest(view.f, view.stride, begin, end, view.layout);
    if (checks != nullptr) ++*checks;
    if (now == table.digests[static_cast<std::size_t>(t)]) continue;
    // Confirm before accusing the state: a second, independent pass over
    // the same slots.  Agreement between the two fresh digests means the
    // state really changed under us; disagreement means the first pass
    // itself misread — a checker fault, retracted and counted but never
    // escalated into a rollback.
    const lbm::TileDigest again =
        lbm::tile_digest(view.f, view.stride, begin, end, view.layout);
    if (again != now) {
      if (false_positives != nullptr) ++*false_positives;
      continue;
    }
    if (mismatches != nullptr)
      mismatches->push_back(Mismatch{r, t, table.step});
  }
}

std::vector<analysis::Diagnostic> scan_live_health(
    const double* f, std::int64_t stride, std::int64_t points,
    lbm::LiveLayout layout, const HealthPolicy& health, double force_x,
    double force_y, double force_z, std::int64_t step,
    const std::string& where) {
  std::vector<analysis::Diagnostic> out;
  if (!health.scan_nonfinite && !health.check_velocity) return out;

  std::int64_t bad = 0;
  std::int64_t first_bad = -1;
  double max_speed2 = 0.0;
  for (std::int64_t i = 0; i < points; ++i) {
    double fi[lbm::kQ];
    bool finite = true;
    for (int q = 0; q < lbm::kQ; ++q) {
      const std::size_t row =
          static_cast<std::size_t>(lbm::live_slot_q(layout, q)) *
          static_cast<std::size_t>(stride);
      fi[q] = f[row + static_cast<std::size_t>(i)];
      if (!std::isfinite(fi[q])) finite = false;
    }
    if (!finite) {
      ++bad;
      if (first_bad < 0) first_bad = i;
      continue;  // moments of a non-finite set are meaningless
    }
    if (health.check_velocity) {
      const lbm::Moments m = lbm::moments_of(fi, force_x, force_y, force_z);
      const double s2 = m.ux * m.ux + m.uy * m.uy + m.uz * m.uz;
      max_speed2 = std::max(max_speed2, s2);
    }
  }
  if (health.scan_nonfinite && bad > 0) {
    std::ostringstream msg;
    msg << "step " << step << ": " << bad
        << " point(s) with non-finite distributions (first local index "
        << first_bad << ")";
    out.push_back(analysis::Diagnostic{
        "RS001", analysis::Severity::kError, where, 0, msg.str(),
        "roll back to the last checkpoint"});
  }
  if (health.check_velocity &&
      max_speed2 > health.max_velocity * health.max_velocity) {
    std::ostringstream msg;
    msg << "step " << step << ": velocity magnitude " << std::sqrt(max_speed2)
        << " exceeds ceiling " << health.max_velocity
        << " (lattice Mach limit; state is blowing up)";
    out.push_back(analysis::Diagnostic{
        "RS003", analysis::Severity::kError, where, 0, msg.str(),
        "roll back to the last checkpoint"});
  }
  return out;
}

}  // namespace hemo::resilience
