#pragma once
// Minimal aligned-text and CSV table writer used by every benchmark binary
// to print the rows/series of the paper's tables and figures.

#include <iosfwd>
#include <string>
#include <vector>

namespace hemo {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Column-aligned plain text, suitable for terminal output.
  void print_aligned(std::ostream& os) const;

  /// RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

  /// Format a double with the given precision, trimming trailing zeros.
  static std::string num(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hemo
