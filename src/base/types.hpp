#pragma once
// Fundamental index and geometry types shared across all HemoFlow modules.

#include <array>
#include <cstdint>
#include <functional>

namespace hemo {

/// Index of a fluid lattice point within a rank-local or global point list.
using PointIndex = std::int64_t;

/// MPI-style rank identifier in the communication substrate.
using Rank = int;

/// Sentinel for "no neighbor" / solid wall in adjacency lists.
inline constexpr PointIndex kSolidNeighbor = -1;

/// Integer lattice coordinate (lattice units, one cell per unit).
struct Coord {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t z = 0;

  friend bool operator==(const Coord&, const Coord&) = default;

  Coord operator+(const Coord& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Coord operator-(const Coord& o) const { return {x - o.x, y - o.y, z - o.z}; }
};

/// Double-precision 3-vector for velocities, forces and positions.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend bool operator==(const Vec3&, const Vec3&) = default;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm2() const { return dot(*this); }
};

/// Axis-aligned integer bounding box, inclusive of lo, exclusive of hi.
struct Box {
  Coord lo;
  Coord hi;

  std::int64_t extent(int axis) const {
    switch (axis) {
      case 0: return hi.x - lo.x;
      case 1: return hi.y - lo.y;
      default: return hi.z - lo.z;
    }
  }
  std::int64_t volume() const { return extent(0) * extent(1) * extent(2); }
  bool contains(const Coord& c) const {
    return c.x >= lo.x && c.x < hi.x && c.y >= lo.y && c.y < hi.y &&
           c.z >= lo.z && c.z < hi.z;
  }
  /// Longest axis (0=x, 1=y, 2=z); ties broken toward the lower axis.
  int longest_axis() const {
    int axis = 0;
    std::int64_t best = extent(0);
    for (int a = 1; a < 3; ++a) {
      if (extent(a) > best) {
        best = extent(a);
        axis = a;
      }
    }
    return axis;
  }
};

struct CoordHash {
  std::size_t operator()(const Coord& c) const noexcept {
    // 3D -> 1D mix; coordinates in this project are well under 2^21.
    std::uint64_t h = static_cast<std::uint32_t>(c.x);
    h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint32_t>(c.y);
    h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint32_t>(c.z);
    return std::hash<std::uint64_t>{}(h);
  }
};

}  // namespace hemo
