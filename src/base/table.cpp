#include "base/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "base/contracts.hpp"

namespace hemo {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HEMO_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  HEMO_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print_aligned(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << r[c];
      if (c + 1 < r.size())
        os << std::string(width[c] - r[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << quote(r[c]);
      if (c + 1 < r.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace hemo
