#pragma once
// Lightweight precondition/postcondition checks in the spirit of the
// C++ Core Guidelines (I.5/I.7, Expects/Ensures).  Violations indicate
// programmer error, so they abort rather than throw.

#include <cstdio>
#include <cstdlib>

namespace hemo {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace hemo

#define HEMO_EXPECTS(cond)                                               \
  ((cond) ? static_cast<void>(0)                                         \
          : ::hemo::contract_failure("Precondition", #cond, __FILE__, __LINE__))

#define HEMO_ENSURES(cond)                                                \
  ((cond) ? static_cast<void>(0)                                          \
          : ::hemo::contract_failure("Postcondition", #cond, __FILE__, __LINE__))

#define HEMO_ASSERT(cond)                                             \
  ((cond) ? static_cast<void>(0)                                      \
          : ::hemo::contract_failure("Assertion", #cond, __FILE__, __LINE__))
