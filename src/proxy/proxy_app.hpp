#pragma once
// The LBM proxy application (Section 3.2): a cylindrical channel flow of
// axial length 84x and radius 8x, with the simple slab decomposition that
// gives perfect load balance on this geometry.  The proxy exists to gauge
// the performance bounds of the full application and to exercise new
// systems/models quickly; MFLUPS (millions of fluid lattice updates per
// second) is its performance measure.

#include <cstdint>
#include <memory>

#include "geom/cylinder.hpp"
#include "hal/model.hpp"
#include "harvey/device_solver.hpp"
#include "harvey/distributed_solver.hpp"
#include "lbm/solver.hpp"

namespace hemo::proxy {

struct ProxyConfig {
  double scale = 1.0;             // the paper's "x": length 84x, radius 8x
  int ranks = 1;                  // slab decomposition when > 1
  double tau = 0.9;
  double inlet_velocity = 0.01;   // Zou-He caps drive the channel flow
  double outlet_density = 1.0;
};

/// Result of a timed proxy run on the host engine.
struct ProxyMeasurement {
  std::int64_t fluid_points = 0;
  int steps = 0;
  double seconds = 0.0;
  double mflups = 0.0;  // fluid points * steps / seconds / 1e6
};

class ProxyApp {
 public:
  explicit ProxyApp(const ProxyConfig& config);

  /// Runs `steps` iterations through the distributed (slab) solver and
  /// measures host MFLUPS.
  ProxyMeasurement run(int steps);

  /// Runs `steps` iterations through one programming-model dialect on a
  /// single device (used for cross-model comparisons and examples).
  ProxyMeasurement run_on_model(hal::Model model, int steps);

  std::int64_t fluid_points() const { return lattice_->size(); }
  const lbm::SparseLattice& lattice() const { return *lattice_; }
  const ProxyConfig& config() const { return config_; }

  /// The steady-state centerline velocity the channel should approach
  /// (Poiseuille with the configured inlet flux).
  double expected_peak_velocity() const;

  /// Mean axial velocity over a cross-section slice, from the current
  /// distributed solver state.
  double mean_axial_velocity(std::int32_t z_slice) const;

 private:
  ProxyConfig config_;
  std::shared_ptr<lbm::SparseLattice> lattice_;
  std::unique_ptr<harvey::DistributedSolver> solver_;
};

}  // namespace hemo::proxy
