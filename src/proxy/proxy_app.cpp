#include "proxy/proxy_app.hpp"

#include <chrono>

#include "base/contracts.hpp"
#include "decomp/partition.hpp"

namespace hemo::proxy {

namespace {

lbm::SolverOptions solver_options(const ProxyConfig& config) {
  lbm::SolverOptions o;
  o.tau = config.tau;
  o.inlet_velocity = config.inlet_velocity;
  o.outlet_density = config.outlet_density;
  return o;
}

}  // namespace

ProxyApp::ProxyApp(const ProxyConfig& config) : config_(config) {
  HEMO_EXPECTS(config.scale > 0.0);
  HEMO_EXPECTS(config.ranks >= 1);

  geom::CylinderSpec spec;
  spec.scale = config.scale;
  lattice_ = geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);

  solver_ = std::make_unique<harvey::DistributedSolver>(
      lattice_, decomp::slab_partition(*lattice_, config.ranks),
      solver_options(config));
}

ProxyMeasurement ProxyApp::run(int steps) {
  HEMO_EXPECTS(steps > 0);
  const auto start = std::chrono::steady_clock::now();
  solver_->run(steps);
  const auto stop = std::chrono::steady_clock::now();

  ProxyMeasurement m;
  m.fluid_points = lattice_->size();
  m.steps = steps;
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.mflups = static_cast<double>(m.fluid_points) * steps / m.seconds / 1e6;
  return m;
}

ProxyMeasurement ProxyApp::run_on_model(hal::Model model, int steps) {
  HEMO_EXPECTS(steps > 0);
  harvey::DeviceSolver device(lattice_, solver_options(config_), model);
  const auto start = std::chrono::steady_clock::now();
  device.run(steps);
  const auto stop = std::chrono::steady_clock::now();

  ProxyMeasurement m;
  m.fluid_points = lattice_->size();
  m.steps = steps;
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.mflups = static_cast<double>(m.fluid_points) * steps / m.seconds / 1e6;
  return m;
}

double ProxyApp::expected_peak_velocity() const {
  // Poiseuille: the mean velocity over the disk is half the peak, and the
  // inlet prescribes a plug profile carrying the mean flux.
  return 2.0 * config_.inlet_velocity;
}

double ProxyApp::mean_axial_velocity(std::int32_t z_slice) const {
  double sum = 0.0;
  std::int64_t count = 0;
  for (PointIndex i = 0; i < lattice_->size(); ++i) {
    if (lattice_->coord(i).z != z_slice) continue;
    sum += solver_->global_moments(i).uz;
    ++count;
  }
  HEMO_EXPECTS(count > 0);
  return sum / static_cast<double>(count);
}

}  // namespace hemo::proxy
