#pragma once
// DistributedSolver: multi-rank LBM over the in-process message-passing
// network.  Every rank owns a contiguous sub-lattice (from a Partition),
// carries one layer of ghost points, and exchanges exactly the crossing
// distribution values each step — the same halo pattern whose byte volumes
// drive the paper's performance model (Section 6, Eq. 2).
//
// The implementation is bit-identical to the single-domain reference
// Solver, which the tests verify for a range of rank counts; the message
// ledger it produces is what the cluster simulator prices.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "comm/network.hpp"
#include "hal/model.hpp"
#include "decomp/partition.hpp"
#include "lbm/kernels.hpp"
#include "lbm/solver.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::harvey {

class DistributedSolver {
 public:
  DistributedSolver(std::shared_ptr<const lbm::SparseLattice> global,
                    decomp::Partition partition, lbm::SolverOptions options);
  ~DistributedSolver();

  void step();
  void run(int steps);

  /// Debug hook: statically validates the decomposed state before any
  /// time-stepping — global lattice consistency (hemo::analysis lattice
  /// checker), the partition, and the precomputed halo exchanges (pack
  /// slots must be interior, unpack slots must be ghost slots, no slot
  /// unpacked twice; rule LC009).  Returns every diagnostic found; an
  /// empty vector means the solver state is safe to step.
  std::vector<analysis::Diagnostic> validate() const;

  int n_ranks() const { return partition_.n_ranks; }
  std::int64_t step_count() const { return steps_done_; }
  const comm::Network& network() const { return network_; }
  const decomp::Partition& partition() const { return partition_; }

  /// Post-collision distributions reassembled into the global point
  /// ordering (q-major SoA over the global lattice).
  std::vector<double> global_distributions() const;

  /// Updates the prescribed inlet velocity on every rank (pulsatile
  /// inflow support).
  void set_inlet_velocity(double velocity);

  /// Routes subsequent per-rank kernel execution through a programming-
  /// model dialect (the study's actual execution mode: MPI ranks each
  /// driving a device through CUDA/HIP/SYCL/Kokkos).  Without a model the
  /// kernels run as plain host loops; results are bit-identical either
  /// way, which the tests assert.
  void set_execution_model(hal::Model model);
  std::optional<hal::Model> execution_model() const { return model_; }

  lbm::Moments global_moments(PointIndex global_index) const;
  double total_mass() const;

  /// Points owned by one rank (count, for balance statistics).
  std::int64_t owned_count(Rank r) const;

 private:
  struct RankState {
    std::vector<PointIndex> owned_global;  // global index of local point i
    std::vector<PointIndex> adjacency;     // local, kQ * local_n, q-major
    std::vector<std::uint8_t> node_type;   // local
    std::vector<double> f_a, f_b;
    double* current = nullptr;
    double* next = nullptr;
    std::int64_t owned = 0;  // owned points come first; ghosts after
    std::int64_t local = 0;  // owned + ghosts
  };

  /// One direction of a halo exchange, precomputed: which local slots to
  /// pack on the sender and unpack into on the receiver.
  struct Exchange {
    Rank src = 0;
    Rank dst = 0;
    // Entry k: value f[q_k][src_local_k] -> f[q_k][dst_local_k].
    std::vector<int> q;
    std::vector<std::int64_t> src_local;
    std::vector<std::int64_t> dst_local;
  };

  void exchange_halos();
  void execute_rank_kernel(RankState& rs);
  lbm::KernelArgs rank_args(RankState& rs) const;

  std::shared_ptr<const lbm::SparseLattice> global_;
  decomp::Partition partition_;
  lbm::SolverOptions options_;
  comm::Network network_;
  std::vector<RankState> ranks_;
  std::vector<Exchange> exchanges_;  // sorted by (src, dst)
  std::int64_t steps_done_ = 0;
  std::optional<hal::Model> model_;
  bool owns_kokkos_runtime_ = false;
};

}  // namespace hemo::harvey
