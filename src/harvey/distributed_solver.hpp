#pragma once
// DistributedSolver: multi-rank LBM over the in-process message-passing
// network.  Every rank owns a contiguous sub-lattice (from a Partition),
// carries one layer of ghost points, and exchanges exactly the crossing
// distribution values each step — the same halo pattern whose byte volumes
// drive the paper's performance model (Section 6, Eq. 2).
//
// The implementation is bit-identical to the single-domain reference
// Solver, which the tests verify for a range of rank counts; the message
// ledger it produces is what the cluster simulator prices.
//
// Resilience (opt-in via enable_resilience): halo messages carry CRC-32
// frames, failed or corrupted receives are answered by retransmission from
// the sender's intact state, per-step numerical-health guards (RS001-RS005)
// watch the state, and a bounded rollback ladder restores an in-memory
// snapshot when retransmission cannot help.  When every rung is exhausted
// the solver raises a structured resilience::SolverFault instead of
// aborting.  On-disk checkpoints (CRC-checked io::Blob files) let a
// campaign resume a failed point from its last good step.
//
// Elastic shrink-recovery (opt-in via ShrinkPolicy): when a rank's
// outbound traffic goes permanently silent — every receive from it
// exhausts the retransmit budget with *nothing* arriving, step after
// rolled-back step — the deadline failure detector escalates it from
// "transient" to "dead".  The solver then re-runs the recursive load
// bisection over the surviving rank set (original rank ids are kept; dead
// ranks simply own zero points), rebuilds the halo exchanges, scatters the
// last CRC-checked checkpoint state onto the new decomposition, and
// resumes stepping.  Because replayed steps recompute the identical
// lattice update on the survivors, the final state is bit-identical to an
// unfaulted run — and therefore to any rerun with the same kill schedule.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "comm/network.hpp"
#include "hal/model.hpp"
#include "decomp/partition.hpp"
#include "lbm/kernels.hpp"
#include "lbm/solver.hpp"
#include "lbm/sparse_lattice.hpp"
#include "resilience/fault.hpp"
#include "resilience/policy.hpp"
#include "resilience/sentinel.hpp"

namespace hemo::harvey {

class DistributedSolver {
 public:
  DistributedSolver(std::shared_ptr<const lbm::SparseLattice> global,
                    decomp::Partition partition, lbm::SolverOptions options);
  ~DistributedSolver();

  void step();

  /// Advances `steps` net steps.  Under resilience a step may be undone by
  /// a rollback and replayed, so this loops until the step counter has
  /// actually advanced by `steps`.
  void run(int steps);

  /// Debug hook: statically validates the decomposed state before any
  /// time-stepping — global lattice consistency (hemo::analysis lattice
  /// checker), the partition, and the precomputed halo exchanges (pack
  /// slots must be interior, unpack slots must be ghost slots, no slot
  /// unpacked twice within an exchange; rule LC009), plus the cross-
  /// exchange CRC-auditability check (rule LC010).  Returns every
  /// diagnostic found; an empty vector means the solver state is safe to
  /// step.
  std::vector<analysis::Diagnostic> validate() const;

  int n_ranks() const { return partition_.n_ranks; }

  /// Live ranks: n_ranks() minus those declared permanently dead by the
  /// shrink rung.  Degraded-mode efficiency is computed against this.
  int survivor_count() const;
  bool rank_alive(Rank r) const;

  std::int64_t step_count() const { return steps_done_; }
  const comm::Network& network() const { return *network_; }
  const decomp::Partition& partition() const { return partition_; }

  /// Replaces the message-passing substrate, e.g. with a fault-injecting
  /// resilience::FaultyNetwork.  Only allowed before the first step; the
  /// replacement must be sized for the same rank count.
  void set_network(std::unique_ptr<comm::Network> network);

  /// The communicating (src, dst) rank pairs of the halo plan, in
  /// deterministic order — the edge set fault plans draw from.
  std::vector<std::pair<Rank, Rank>> exchange_pairs() const;

  // -- Resilience -----------------------------------------------------------

  /// Turns on CRC halo frames, retransmission, health guards and rollback
  /// per `options`.  Records the current mass as the conservation
  /// reference.  May be called before any stepping only.
  void enable_resilience(const resilience::Options& options);
  bool resilience_enabled() const { return resilience_.has_value(); }
  const resilience::RunStats& resilience_stats() const { return stats_; }

  /// Registers a fault plan whose kBitFlip events this solver applies to
  /// its own live distribution state at the start of each step — in-memory
  /// SDC injection, the fault class the FaultyNetwork cannot reach.  The
  /// solver resolves each event's global point to its owner rank at fire
  /// time, flips the requested bit, and records the ground truth
  /// (fired_rank, fired_tile) on the event so a chaos harness can score
  /// the sentinel's localization.  Non-owning — typically the same plan a
  /// FaultyNetwork holds, so the one-shot fired flags are shared and a
  /// rollback replay re-fires neither network nor memory faults.  Pass
  /// nullptr to detach.
  void set_fault_injection(resilience::FaultPlan* plan) {
    injected_faults_ = plan;
  }

  /// Per-step numerical-health guards (RS001 non-finite, RS002 mass drift,
  /// RS003 velocity ceiling) evaluated against the current state.  Run
  /// automatically after every resilient step; callable directly for
  /// diagnostics.  Does not advance the mass-drift reference.
  std::vector<analysis::Diagnostic> check_health() const;

  // -- Checkpoint / restart -------------------------------------------------

  /// Writes a versioned, CRC-checked binary checkpoint of the full solver
  /// state (every rank's distributions + the step counter) through
  /// io::BlobWriter.  restore_checkpoint() of the file reproduces the run
  /// bit-identically.
  void save_checkpoint(const std::string& path) const;
  void restore_checkpoint(const std::string& path);

  /// Per-rank variant: a checkpoint holding one rank's state only.  The
  /// restore returns the step the record was taken at; the caller is
  /// responsible for restoring every rank to the same step before
  /// stepping again.
  void save_rank_checkpoint(const std::string& path, Rank r) const;
  std::int64_t restore_rank_checkpoint(const std::string& path, Rank r);

  /// Post-collision distributions reassembled into the global point
  /// ordering (q-major SoA over the global lattice).
  std::vector<double> global_distributions() const;

  /// Updates the prescribed inlet velocity on every rank (pulsatile
  /// inflow support).
  void set_inlet_velocity(double velocity);

  /// Routes subsequent per-rank kernel execution through a programming-
  /// model dialect (the study's actual execution mode: MPI ranks each
  /// driving a device through CUDA/HIP/SYCL/Kokkos).  Without a model the
  /// kernels run as plain host loops; results are bit-identical either
  /// way, which the tests assert.
  void set_execution_model(hal::Model model);
  std::optional<hal::Model> execution_model() const { return model_; }

  lbm::Moments global_moments(PointIndex global_index) const;
  double total_mass() const;

  /// Points owned by one rank (count, for balance statistics).
  std::int64_t owned_count(Rank r) const;

 private:
  struct RankState {
    std::vector<PointIndex> owned_global;  // global index of local point i
    std::vector<PointIndex> adjacency;     // local, kQ * local_n, q-major
    std::vector<std::uint8_t> node_type;   // local
    std::vector<double> f_a, f_b;
    double* current = nullptr;
    double* next = nullptr;
    std::int64_t owned = 0;  // owned points come first; ghosts after
    std::int64_t local = 0;  // owned + ghosts
  };

  /// One direction of a halo exchange, precomputed: which local slots to
  /// pack on the sender and unpack into on the receiver.
  struct Exchange {
    Rank src = 0;
    Rank dst = 0;
    // Entry k: value f[q_k][src_local_k] -> f[q_k][dst_local_k].
    std::vector<int> q;
    std::vector<std::int64_t> src_local;
    std::vector<std::int64_t> dst_local;
  };

  /// In-memory rollback target: the distribution state of every rank plus
  /// the counters needed to replay from it.
  struct Snapshot {
    std::int64_t step = -1;
    double prev_mass = 0.0;
    std::vector<std::vector<double>> state;  // per rank, kQ * local values
  };

  /// One halo edge that failed past the retransmit budget, and whether
  /// every failure was pure absence (kMissing) — the signature of a silent
  /// rank, as opposed to corruption or truncation.
  struct FailedEdge {
    Rank src = -1;
    Rank dst = -1;
    bool missing_only = true;
  };

  void exchange_halos();
  void execute_rank_kernel(RankState& rs);
  lbm::KernelArgs rank_args(RankState& rs) const;
  void advance_state();

  /// Builds ranks_ and exchanges_ from the current partition_.  Called by
  /// the constructor and again by shrink_to_survivors() after the
  /// partition was re-bisected over the survivors.  Dead ranks own zero
  /// points and take part in no exchange.
  void build_decomposition();

  // Resilient halo machinery.
  std::vector<double> pack_payload(const Exchange& e) const;
  void post_all_halos();
  bool receive_exchange(const Exchange& e, bool* missing_only);
  bool resilient_exchange(Rank* suspect);
  void drain_stragglers();
  void record(const char* rule, analysis::Severity severity,
              const std::string& where, const std::string& message);
  void take_snapshot();
  void rollback_or_fault(const std::string& why);
  std::int64_t total_values() const;
  void resilient_step();

  // SDC sentinel (RS006) machinery.
  resilience::Sentinel::RankView rank_view(const RankState& rs) const;
  void sentinel_record_all();
  /// Verifies every rank's recorded digests (when due, or `force`d because
  /// a snapshot is about to be taken).  Returns true when a confirmed
  /// detection was escalated (rollback or quarantine) — the step attempt
  /// is over and the caller must return.
  bool sentinel_verify_all(bool force);
  /// Duplicate re-execution vote-compare over sampled tiles (runs after
  /// advance_state, when the step's input still survives in rs.next).
  /// Same return contract as sentinel_verify_all.
  bool reexec_vote_sample();
  /// Shared escalation for both detection paths: records RS006 per
  /// mismatch, then quarantines the offending rank (repeat offender +
  /// shrink possible) or rolls back.
  bool handle_sdc(const std::vector<resilience::Sentinel::Mismatch>& found,
                  bool reexec);
  void apply_due_bit_flips();

  // Elastic shrink-recovery.
  Rank diagnose_dead_rank(const std::vector<FailedEdge>& failed) const;
  bool can_shrink() const;
  void shrink_to_survivors(Rank dead);
  std::vector<double> snapshot_global_state() const;
  void scatter_global_state(const std::vector<double>& f);

  std::shared_ptr<const lbm::SparseLattice> global_;
  decomp::Partition partition_;
  lbm::SolverOptions options_;
  std::unique_ptr<comm::Network> network_;
  std::vector<RankState> ranks_;
  std::vector<Exchange> exchanges_;  // sorted by (src, dst)
  std::int64_t steps_done_ = 0;
  std::optional<hal::Model> model_;
  bool owns_kokkos_runtime_ = false;

  std::optional<resilience::Options> resilience_;
  resilience::RunStats stats_;
  Snapshot snapshot_;
  int rollbacks_used_ = 0;
  double initial_mass_ = 0.0;
  double prev_mass_ = 0.0;

  // SDC sentinel state.  sdc_hits_[r] accumulates RS006 detections blamed
  // on rank r across the whole run (not per step): a device whose memory
  // keeps flipping bits is failing, not unlucky, and crossing
  // SentinelPolicy::quarantine_threshold escalates it to the shrink path.
  resilience::FaultPlan* injected_faults_ = nullptr;  // non-owning
  std::optional<resilience::Sentinel> sentinel_;
  std::vector<int> sdc_hits_;
  std::vector<double> reexec_scratch_a_, reexec_scratch_b_;

  // Failure detector: alive_[r] is cleared forever when rank r is declared
  // dead; suspect_rank_/suspect_count_ track the deadline escalation (how
  // many consecutive failed step attempts blamed the same unique rank).
  std::vector<char> alive_;
  Rank suspect_rank_ = -1;
  int suspect_count_ = 0;
};

}  // namespace hemo::harvey
