#include "harvey/distributed_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "analysis/lattice_check.hpp"
#include "base/contracts.hpp"
#include "base/rng.hpp"
#include "hal/cudax.hpp"
#include "hal/hipx.hpp"
#include "hal/kokkosx.hpp"
#include "hal/syclx.hpp"
#include "io/blob.hpp"

namespace hemo::harvey {

namespace {

// Checkpoint blob format: "HEMODCKP" v1.  Record 0 is the metadata, then
// one record per rank carrying its full distribution array (owned + ghost
// slots), so a restore reproduces the stepping bit-for-bit.
constexpr std::uint64_t kCkptMagic = 0x48454D4F44434B50ull;  // "HEMODCKP"
constexpr std::uint32_t kCkptVersion = 1;
constexpr std::uint32_t kMetaTag = 0;
constexpr std::uint32_t kRankTagBase = 1;

struct CkptMeta {
  std::int64_t step = 0;
  std::int64_t global_size = 0;
  std::int32_t n_ranks = 0;
  std::int32_t q = 0;
};

/// Validates the CRC frame word a resilient sender appended to a halo
/// payload.  The frame is a crc32 of the data bytes stored as a double
/// (exact: crc < 2^32 < 2^53); corruption of either the data or the frame
/// itself fails the comparison.  NaN-safe: a damaged frame word that is no
/// longer a valid integral double simply reads as "mismatch".
bool frame_ok(const std::vector<double>& payload) {
  const double tail = payload.back();
  if (!(tail >= 0.0 && tail < 4294967296.0)) return false;
  const auto stored = static_cast<std::uint32_t>(tail);
  const std::uint32_t actual =
      io::crc32(payload.data(), (payload.size() - 1) * sizeof(double));
  return stored == actual;
}

}  // namespace

DistributedSolver::~DistributedSolver() {
  if (owns_kokkos_runtime_) hal::kokkosx::finalize();
}

DistributedSolver::DistributedSolver(
    std::shared_ptr<const lbm::SparseLattice> global,
    decomp::Partition partition, lbm::SolverOptions options)
    : global_(std::move(global)),
      partition_(std::move(partition)),
      options_(options),
      network_(std::make_unique<comm::Network>(partition_.n_ranks)) {
  HEMO_EXPECTS(global_ != nullptr);
  HEMO_EXPECTS(partition_.owner.size() ==
               static_cast<std::size_t>(global_->size()));
  HEMO_EXPECTS(options_.tau > 0.5);

  alive_.assign(static_cast<std::size_t>(partition_.n_ranks), 1);
  build_decomposition();
  initial_mass_ = prev_mass_ = total_mass();
}

void DistributedSolver::build_decomposition() {
  const int R = partition_.n_ranks;
  ranks_.assign(static_cast<std::size_t>(R), RankState{});
  exchanges_.clear();

  // Local index maps: global point -> (rank-local index) per rank.
  std::vector<std::unordered_map<PointIndex, std::int64_t>> local_of(
      static_cast<std::size_t>(R));

  for (Rank r = 0; r < R; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    rs.owned_global = partition_.points_of(r);
    // A dead rank legitimately owns nothing after a shrink; an *alive*
    // rank with no points means the partition is broken.
    HEMO_EXPECTS(!rs.owned_global.empty() ||
                 !alive_[static_cast<std::size_t>(r)]);
    rs.owned = static_cast<std::int64_t>(rs.owned_global.size());
    auto& map = local_of[static_cast<std::size_t>(r)];
    map.reserve(rs.owned_global.size() * 2);
    for (std::int64_t li = 0; li < rs.owned; ++li)
      map.emplace(rs.owned_global[static_cast<std::size_t>(li)], li);
  }

  // Discover ghosts: fluid neighbors of owned points living on other ranks.
  for (Rank r = 0; r < R; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    auto& map = local_of[static_cast<std::size_t>(r)];
    std::vector<PointIndex> ghosts;
    for (PointIndex gi : rs.owned_global) {
      for (int q = 1; q < lbm::kQ; ++q) {
        const PointIndex up = global_->neighbor(q, gi);
        if (up == kSolidNeighbor) continue;
        if (partition_.owner[static_cast<std::size_t>(up)] == r) continue;
        if (map.contains(up)) continue;
        map.emplace(up, 0);  // placeholder; fixed after sorting
        ghosts.push_back(up);
      }
    }
    std::sort(ghosts.begin(), ghosts.end());
    for (std::size_t k = 0; k < ghosts.size(); ++k)
      map[ghosts[k]] = rs.owned + static_cast<std::int64_t>(k);
    rs.local = rs.owned + static_cast<std::int64_t>(ghosts.size());

    // Local adjacency and node types; ghost rows are never executed, so
    // their adjacency stays kSolidNeighbor and their type kBulk.
    rs.adjacency.assign(static_cast<std::size_t>(lbm::kQ) *
                            static_cast<std::size_t>(rs.local),
                        kSolidNeighbor);
    rs.node_type.assign(static_cast<std::size_t>(rs.local),
                        static_cast<std::uint8_t>(lbm::NodeType::kBulk));
    for (std::int64_t li = 0; li < rs.owned; ++li) {
      const PointIndex gi = rs.owned_global[static_cast<std::size_t>(li)];
      rs.node_type[static_cast<std::size_t>(li)] =
          static_cast<std::uint8_t>(global_->node_type(gi));
      for (int q = 0; q < lbm::kQ; ++q) {
        const PointIndex up = global_->neighbor(q, gi);
        if (up == kSolidNeighbor) continue;
        rs.adjacency[static_cast<std::size_t>(q) *
                         static_cast<std::size_t>(rs.local) +
                     static_cast<std::size_t>(li)] = map.at(up);
      }
    }

    // Distributions: everything (ghosts included) starts at equilibrium;
    // the first exchange overwrites ghosts with the owners' identical
    // values, so initialization matches the single-domain solver exactly.
    rs.f_a.resize(static_cast<std::size_t>(lbm::kQ) *
                  static_cast<std::size_t>(rs.local));
    rs.f_b.resize(rs.f_a.size());
    const Vec3& u0 = options_.initial_velocity;
    for (int q = 0; q < lbm::kQ; ++q) {
      const double feq =
          lbm::equilibrium(q, options_.initial_density, u0.x, u0.y, u0.z);
      std::fill_n(rs.f_a.begin() + static_cast<std::ptrdiff_t>(q) * rs.local,
                  rs.local, feq);
    }
    rs.current = rs.f_a.data();
    rs.next = rs.f_b.data();
  }

  // Exchange lists, built centrally in deterministic (dst, local, q) order.
  std::map<std::pair<Rank, Rank>, Exchange> pairs;
  for (Rank d = 0; d < R; ++d) {
    const RankState& rs = ranks_[static_cast<std::size_t>(d)];
    for (std::int64_t li = 0; li < rs.owned; ++li) {
      const PointIndex gi = rs.owned_global[static_cast<std::size_t>(li)];
      for (int q = 1; q < lbm::kQ; ++q) {
        const PointIndex up = global_->neighbor(q, gi);
        if (up == kSolidNeighbor) continue;
        const Rank s = partition_.owner[static_cast<std::size_t>(up)];
        if (s == d) continue;
        Exchange& e = pairs[{s, d}];
        e.src = s;
        e.dst = d;
        e.q.push_back(q);
        e.src_local.push_back(local_of[static_cast<std::size_t>(s)].at(up));
        e.dst_local.push_back(local_of[static_cast<std::size_t>(d)].at(up));
      }
    }
  }
  exchanges_.reserve(pairs.size());
  for (auto& [key, e] : pairs) exchanges_.push_back(std::move(e));
}

lbm::KernelArgs DistributedSolver::rank_args(RankState& rs) const {
  lbm::KernelArgs a;
  a.f_in = rs.current;
  a.f_out = rs.next;
  a.adjacency = rs.adjacency.data();
  a.node_type = rs.node_type.data();
  a.n = rs.local;  // SoA stride spans owned + ghost slots
  a.omega = 1.0 / options_.tau;
  a.force_x = options_.body_force.x;
  a.force_y = options_.body_force.y;
  a.force_z = options_.body_force.z;
  a.inlet_velocity = options_.inlet_velocity;
  a.outlet_density = options_.outlet_density;
  return a;
}

void DistributedSolver::set_network(std::unique_ptr<comm::Network> network) {
  HEMO_EXPECTS(network != nullptr);
  HEMO_EXPECTS(network->n_ranks() == partition_.n_ranks);
  HEMO_EXPECTS(steps_done_ == 0);
  network_ = std::move(network);
}

std::vector<std::pair<Rank, Rank>> DistributedSolver::exchange_pairs() const {
  std::vector<std::pair<Rank, Rank>> pairs;
  pairs.reserve(exchanges_.size());
  for (const Exchange& e : exchanges_) pairs.emplace_back(e.src, e.dst);
  return pairs;
}

void DistributedSolver::exchange_halos() {
  // Post every send, then drain every receive: the classic halo-exchange
  // schedule (non-blocking sends + receives in MPI terms).
  for (const Exchange& e : exchanges_) {
    const RankState& src = ranks_[static_cast<std::size_t>(e.src)];
    std::vector<double> payload(e.q.size());
    for (std::size_t k = 0; k < e.q.size(); ++k)
      payload[k] = src.current[static_cast<std::size_t>(e.q[k]) *
                                   static_cast<std::size_t>(src.local) +
                               static_cast<std::size_t>(e.src_local[k])];
    network_->send(e.src, e.dst, std::move(payload));
  }
  for (const Exchange& e : exchanges_) {
    RankState& dst = ranks_[static_cast<std::size_t>(e.dst)];
    const std::vector<double> payload =
        network_->receive(e.dst, e.src, e.q.size());
    for (std::size_t k = 0; k < e.q.size(); ++k)
      dst.current[static_cast<std::size_t>(e.q[k]) *
                      static_cast<std::size_t>(dst.local) +
                  static_cast<std::size_t>(e.dst_local[k])] = payload[k];
  }
  HEMO_ASSERT(network_->drained());
}

void DistributedSolver::set_execution_model(hal::Model model) {
  namespace kx = hal::kokkosx;
  if (hal::is_kokkos(model)) {
    const hal::Backend backend = hal::backend_of(model);
    if (!kx::is_initialized()) {
      kx::initialize(backend);
      owns_kokkos_runtime_ = true;
    } else {
      HEMO_EXPECTS(kx::current_backend() == backend);
    }
  }
  model_ = model;
}

void DistributedSolver::execute_rank_kernel(RankState& rs) {
  if (rs.owned == 0) return;  // dead rank post-shrink: nothing to launch
  const lbm::KernelArgs a = rank_args(rs);
  const std::int64_t owned = rs.owned;
  auto body = [a, owned](std::int64_t i) {
    if (i >= owned) return;  // dialect grids round up to block multiples
    lbm::stream_collide_point(a, i);
  };

  if (!model_.has_value()) {
    for (std::int64_t i = 0; i < owned; ++i) lbm::stream_collide_point(a, i);
    return;
  }
  switch (hal::backend_of(*model_)) {
    case hal::Backend::kCuda:
    case hal::Backend::kOpenAcc: {
      if (hal::is_kokkos(*model_)) {
        hal::kokkosx::parallel_for("stream_collide",
                                   hal::kokkosx::RangePolicy(0, owned),
                                   body);
      } else {
        const unsigned block = 256;
        const auto grid = static_cast<unsigned>(
            (owned + block - 1) / static_cast<std::int64_t>(block));
        HEMO_ENSURES(cudaxLaunchKernel(dim3x(grid), dim3x(block), body) ==
                     cudaxSuccess);
      }
      break;
    }
    case hal::Backend::kHip: {
      if (hal::is_kokkos(*model_)) {
        hal::kokkosx::parallel_for("stream_collide",
                                   hal::kokkosx::RangePolicy(0, owned),
                                   body);
      } else {
        const unsigned block = 256;
        const auto grid = static_cast<unsigned>(
            (owned + block - 1) / static_cast<std::int64_t>(block));
        HEMO_ENSURES(hipxLaunchKernel(dim3x(grid), dim3x(block), body) ==
                     hipxSuccess);
      }
      break;
    }
    case hal::Backend::kSycl: {
      if (hal::is_kokkos(*model_)) {
        hal::kokkosx::parallel_for("stream_collide",
                                   hal::kokkosx::RangePolicy(0, owned),
                                   body);
      } else {
        hal::syclx::queue queue;
        queue.parallel_for(
            hal::syclx::range<1>(static_cast<std::size_t>(owned)),
            [body](hal::syclx::id<1> i) {
              body(static_cast<std::int64_t>(i));
            });
      }
      break;
    }
  }
}

void DistributedSolver::advance_state() {
  for (RankState& rs : ranks_) {
    execute_rank_kernel(rs);
    std::swap(rs.current, rs.next);
  }
  ++steps_done_;
}

void DistributedSolver::step() {
  if (resilience_.has_value()) {
    resilient_step();
    return;
  }
  network_->begin_step(steps_done_);
  exchange_halos();
  advance_state();
}

void DistributedSolver::run(int steps) {
  HEMO_EXPECTS(steps >= 0);
  // A rollback moves steps_done_ backwards, so count net progress rather
  // than loop iterations.
  const std::int64_t target = steps_done_ + steps;
  while (steps_done_ < target) step();
}

// ---------------------------------------------------------------------------
// Resilience: CRC frames, retransmission, health guards, rollback.
// ---------------------------------------------------------------------------

void DistributedSolver::enable_resilience(const resilience::Options& options) {
  HEMO_EXPECTS(options.recovery.max_retransmits >= 0);
  HEMO_EXPECTS(options.recovery.checkpoint_interval >= 1);
  HEMO_EXPECTS(options.recovery.max_rollbacks >= 0);
  resilience_ = options;
  stats_ = resilience::RunStats{};
  rollbacks_used_ = 0;
  snapshot_ = Snapshot{};
  initial_mass_ = prev_mass_ = total_mass();

  sentinel_.reset();
  sdc_hits_.assign(static_cast<std::size_t>(partition_.n_ranks), 0);
  if (options.sentinel.enabled) {
    sentinel_.emplace(options.sentinel);
    sentinel_->reset(partition_.n_ranks);
    // Anchor the sentinel: digest the initial state and snapshot it, so a
    // corruption landing before the first checkpoint boundary still has a
    // verified-clean rollback target.
    sentinel_record_all();
    take_snapshot();
  }
}

std::int64_t DistributedSolver::total_values() const {
  return static_cast<std::int64_t>(lbm::kQ) * global_->size();
}

void DistributedSolver::record(const char* rule, analysis::Severity severity,
                               const std::string& where,
                               const std::string& message) {
  stats_.diagnostics.push_back(
      analysis::Diagnostic{rule, severity, where, 0, message, ""});
}

std::vector<double> DistributedSolver::pack_payload(const Exchange& e) const {
  const RankState& src = ranks_[static_cast<std::size_t>(e.src)];
  std::vector<double> payload(e.q.size());
  for (std::size_t k = 0; k < e.q.size(); ++k)
    payload[k] = src.current[static_cast<std::size_t>(e.q[k]) *
                                 static_cast<std::size_t>(src.local) +
                             static_cast<std::size_t>(e.src_local[k])];
  if (resilience_->recovery.checksum_frames) {
    const std::uint32_t crc =
        io::crc32(payload.data(), payload.size() * sizeof(double));
    payload.push_back(static_cast<double>(crc));
  }
  return payload;
}

void DistributedSolver::post_all_halos() {
  for (const Exchange& e : exchanges_)
    network_->send(e.src, e.dst, pack_payload(e));
}

bool DistributedSolver::receive_exchange(const Exchange& e,
                                         bool* missing_only) {
  const bool frames = resilience_->recovery.checksum_frames;
  const std::size_t expected = e.q.size() + (frames ? 1 : 0);
  const int budget = resilience_->recovery.max_retransmits;
  if (missing_only) *missing_only = true;
  int used = 0;
  for (;;) {
    bool have_payload = false;
    std::vector<double> payload;
    try {
      payload = network_->receive(e.dst, e.src, expected);
      have_payload = true;
    } catch (const comm::RecvError& err) {
      if (err.kind() == comm::RecvError::Kind::kMissing) {
        ++stats_.recv_missing;
      } else {
        ++stats_.recv_wrong_size;
        if (missing_only) *missing_only = false;
      }
    }
    if (have_payload) {
      if (!frames || frame_ok(payload)) {
        RankState& dst = ranks_[static_cast<std::size_t>(e.dst)];
        for (std::size_t k = 0; k < e.q.size(); ++k)
          dst.current[static_cast<std::size_t>(e.q[k]) *
                          static_cast<std::size_t>(dst.local) +
                      static_cast<std::size_t>(e.dst_local[k])] = payload[k];
        return true;
      }
      ++stats_.crc_mismatch;  // corrupted in flight; retransmit replaces it
      if (missing_only) *missing_only = false;
    }
    if (used >= budget) return false;
    ++used;
    ++stats_.retransmits;
    // Repack from the sender's intact owned state: the fault hit the wire,
    // not the source data.
    network_->send(e.src, e.dst, pack_payload(e));
  }
}

void DistributedSolver::drain_stragglers() {
  // Duplicates, surviving retransmissions and late-released delayed
  // messages are still in flight after every exchange unpacked once.
  // Consume and discard them so they cannot alias next step's traffic.
  for (const Exchange& e : exchanges_) {
    int guard = 0;
    while (network_->pending(e.dst, e.src) > 0 && guard++ < 64) {
      try {
        network_->receive(e.dst, e.src);
        ++stats_.stragglers_drained;
      } catch (const comm::RecvError&) {
        // A delayed or held message only reached the channel during this
        // poll; the next iteration consumes it.
      }
    }
  }
}

Rank DistributedSolver::diagnose_dead_rank(
    const std::vector<FailedEdge>& failed) const {
  // A permanently dead rank is *totally* silent: nothing it sends reaches
  // the wire and nothing sent to it is accepted, so every one of its
  // planned halo edges — both directions — fails with pure absence.  A
  // transient fault (drop, corrupt, stall) either recovers within the
  // retransmit budget or fails with a non-missing signature.  The suspect
  // must therefore (a) have every planned edge among the failures, and
  // (b) account for every failure; it must also be (c) unique — in a
  // 2-rank run both ranks satisfy (a) and (b) symmetrically, so detection
  // abstains and the ordinary rollback ladder decides.
  for (const FailedEdge& f : failed)
    if (!f.missing_only) return -1;

  std::vector<Rank> candidates;
  for (Rank c = 0; c < partition_.n_ranks; ++c) {
    if (!alive_[static_cast<std::size_t>(c)]) continue;
    std::size_t planned = 0;
    for (const Exchange& e : exchanges_)
      if (e.src == c || e.dst == c) ++planned;
    if (planned == 0) continue;
    std::size_t touching = 0;
    bool all_touch = true;
    for (const FailedEdge& f : failed) {
      if (f.src == c || f.dst == c)
        ++touching;
      else
        all_touch = false;
    }
    if (all_touch && touching == planned) candidates.push_back(c);
  }
  return candidates.size() == 1 ? candidates.front() : -1;
}

bool DistributedSolver::resilient_exchange(Rank* suspect) {
  if (suspect) *suspect = -1;
  post_all_halos();
  const std::int64_t stray_before = stats_.stragglers_drained;
  // Attempt every exchange even after one fails: the failure *pattern*
  // across the whole plan is what distinguishes a dead rank (all of its
  // edges silent) from a transient fault (an isolated edge).
  std::vector<FailedEdge> failed;
  for (const Exchange& e : exchanges_) {
    bool missing_only = true;
    if (!receive_exchange(e, &missing_only))
      failed.push_back(FailedEdge{e.src, e.dst, missing_only});
  }
  if (!failed.empty()) {
    if (suspect) *suspect = diagnose_dead_rank(failed);
    return false;
  }
  drain_stragglers();

  if (resilience_->health.audit_halo) {
    // Audit the wire against the exchange plan: every plan message was
    // delivered exactly once; anything beyond that is off-plan traffic.
    const std::int64_t stray = stats_.stragglers_drained - stray_before;
    if (stray > 0 || !network_->drained()) {
      ++stats_.halo_audit_mismatches;
      std::ostringstream msg;
      msg << "step " << steps_done_ << ": halo traffic off plan (expected "
          << exchanges_.size() << " messages, observed "
          << exchanges_.size() + stray << "; " << stray
          << " strays drained" << (network_->drained() ? ")" : ", wire dirty)");
      record("RS004", analysis::Severity::kWarning, "halo-exchange",
             msg.str());
    }
  }
  return true;
}

std::vector<analysis::Diagnostic> DistributedSolver::check_health() const {
  const resilience::HealthPolicy health =
      resilience_.has_value() ? resilience_->health
                              : resilience::HealthPolicy{};
  std::vector<analysis::Diagnostic> out;

  if (health.scan_nonfinite || health.check_velocity) {
    // The point-wise scan is the shared layout-aware routine (it also
    // guards the live AA arrays of the single-domain solvers); the
    // distributed ranks are always canonical pull-SoA.
    for (Rank r = 0; r < partition_.n_ranks; ++r) {
      const RankState& rs = ranks_[static_cast<std::size_t>(r)];
      std::ostringstream where;
      where << "rank " << r;
      const std::vector<analysis::Diagnostic> rank_diags =
          resilience::scan_live_health(
              rs.current, rs.local, rs.owned, lbm::LiveLayout::kCanonical,
              health, options_.body_force.x, options_.body_force.y,
              options_.body_force.z, steps_done_, where.str());
      out.insert(out.end(), rank_diags.begin(), rank_diags.end());
    }
  }

  if (health.check_mass) {
    const double mass = total_mass();
    if (!std::isfinite(mass)) {
      // Covered point-wise by RS001; skip the drift arithmetic.
    } else if (health.closed_system) {
      const double tol =
          resilience::conserved_mass_tolerance(total_values(), steps_done_);
      const double drift = std::abs(mass - initial_mass_);
      if (drift > tol) {
        std::ostringstream msg;
        msg << "step " << steps_done_ << ": closed-system mass drift "
            << drift << " exceeds tolerance " << tol << " (initial "
            << initial_mass_ << ", current " << mass << ")";
        out.push_back(analysis::Diagnostic{
            "RS002", analysis::Severity::kError, "global", 0, msg.str(),
            "roll back to the last checkpoint"});
      }
    } else {
      const double base = std::max(std::abs(prev_mass_), 1e-300);
      const double jump = std::abs(mass - prev_mass_) / base;
      if (jump > health.mass_step_rel) {
        std::ostringstream msg;
        msg << "step " << steps_done_ << ": global mass jumped "
            << jump * 100.0 << "% in one step (limit "
            << health.mass_step_rel * 100.0
            << "%); boundary fluxes cannot move mass that fast";
        out.push_back(analysis::Diagnostic{
            "RS002", analysis::Severity::kError, "global", 0, msg.str(),
            "roll back to the last checkpoint"});
      }
    }
  }
  return out;
}

void DistributedSolver::take_snapshot() {
  snapshot_.step = steps_done_;
  snapshot_.prev_mass = prev_mass_;
  snapshot_.state.resize(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankState& rs = ranks_[r];
    snapshot_.state[r].assign(
        rs.current, rs.current + static_cast<std::size_t>(lbm::kQ) *
                                     static_cast<std::size_t>(rs.local));
  }
  ++stats_.snapshots;
}

void DistributedSolver::rollback_or_fault(const std::string& why) {
  if (snapshot_.step < 0 ||
      rollbacks_used_ >= resilience_->recovery.max_rollbacks) {
    std::ostringstream msg;
    msg << why << " — recovery budget exhausted (retransmits per exchange "
        << resilience_->recovery.max_retransmits << ", rollbacks "
        << rollbacks_used_ << "/" << resilience_->recovery.max_rollbacks
        << ") at step " << steps_done_;
    throw resilience::SolverFault(msg.str(), stats_.diagnostics);
  }
  ++rollbacks_used_;
  ++stats_.rollbacks;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    RankState& rs = ranks_[r];
    std::copy(snapshot_.state[r].begin(), snapshot_.state[r].end(),
              rs.current);
  }
  steps_done_ = snapshot_.step;
  prev_mass_ = snapshot_.prev_mass;
  // Traffic of the abandoned step must not leak into the replay.
  network_->reset();
  // The digests described the abandoned state; re-anchor on the restored
  // (verified-clean) snapshot.
  if (sentinel_.has_value()) sentinel_record_all();
}

// ---------------------------------------------------------------------------
// SDC sentinel (RS006): record/verify tile digests, duplicate re-execution
// vote-compare, bit-flip chaos injection, and the escalation glue.
// ---------------------------------------------------------------------------

resilience::Sentinel::RankView DistributedSolver::rank_view(
    const RankState& rs) const {
  resilience::Sentinel::RankView view;
  view.f = rs.current;
  view.stride = rs.local;
  view.owned = rs.owned;
  view.layout = lbm::LiveLayout::kCanonical;
  return view;
}

void DistributedSolver::sentinel_record_all() {
  for (Rank r = 0; r < partition_.n_ranks; ++r) {
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    if (rs.owned == 0) continue;  // dead rank post-shrink
    sentinel_->record(r, rank_view(rs), steps_done_);
  }
}

bool DistributedSolver::handle_sdc(
    const std::vector<resilience::Sentinel::Mismatch>& found, bool reexec) {
  if (found.empty()) return false;
  const resilience::SentinelPolicy& pol = sentinel_->policy();
  Rank quarantine = -1;
  for (const resilience::Sentinel::Mismatch& m : found) {
    ++stats_.sdc_detected;
    ++sdc_hits_[static_cast<std::size_t>(m.rank)];
    resilience::SdcDetection d;
    d.rank = m.rank;
    d.tile = m.tile;
    d.step = steps_done_;
    d.latency_steps = steps_done_ - m.recorded_step;
    d.reexec = reexec;
    stats_.sdc_detections.push_back(d);
    std::ostringstream where, msg;
    where << "rank " << m.rank;
    msg << "step " << steps_done_ << ": silent data corruption in tile "
        << m.tile
        << (reexec ? " (duplicate re-execution vote-compare"
                   : " (digest mismatch vs record at step ");
    if (!reexec) msg << m.recorded_step;
    msg << "); detection " << sdc_hits_[static_cast<std::size_t>(m.rank)]
        << " on this rank";
    record("RS006", analysis::Severity::kError, where.str(), msg.str());
    if (quarantine < 0 &&
        sdc_hits_[static_cast<std::size_t>(m.rank)] >=
            pol.quarantine_threshold)
      quarantine = m.rank;
  }
  if (quarantine >= 0 && can_shrink()) {
    // Repeat offender: its memory keeps corrupting — retire the device.
    ++stats_.sdc_quarantines;
    shrink_to_survivors(quarantine);  // re-anchors the digests itself
    return true;
  }
  std::ostringstream why;
  why << "silent data corruption detected at step " << steps_done_;
  rollback_or_fault(why.str());  // re-anchors the digests itself
  return true;
}

bool DistributedSolver::sentinel_verify_all(bool force) {
  const resilience::SentinelPolicy& pol = sentinel_->policy();
  if (!force && steps_done_ % pol.check_interval != 0) return false;
  std::vector<resilience::Sentinel::Mismatch> found;
  for (Rank r = 0; r < partition_.n_ranks; ++r) {
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    if (rs.owned == 0) continue;
    sentinel_->verify(r, rank_view(rs), &found, &stats_.sdc_checks,
                      &stats_.sdc_false_positive);
  }
  return handle_sdc(found, /*reexec=*/false);
}

bool DistributedSolver::reexec_vote_sample() {
  const resilience::SentinelPolicy& pol = sentinel_->policy();
  if (pol.reexec_sample <= 0) return false;
  std::vector<resilience::Sentinel::Mismatch> found;
  for (Rank r = 0; r < partition_.n_ranks; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    if (rs.owned == 0) continue;
    const std::int64_t tiles = sentinel_->tiles_of(rs.owned);
    const std::size_t values = static_cast<std::size_t>(lbm::kQ) *
                               static_cast<std::size_t>(rs.local);
    if (reexec_scratch_a_.size() < values) reexec_scratch_a_.resize(values);
    if (reexec_scratch_b_.size() < values) reexec_scratch_b_.resize(values);

    // advance_state already swapped, so rs.next is the step's input and
    // rs.current the output under vote.  Re-execute twice independently;
    // the two shadows vote against the live result.
    lbm::KernelArgs a = rank_args(rs);
    a.f_in = rs.next;

    // Deterministic per-(step, rank) tile choice — a rollback replay of
    // the same step samples the same tiles.
    SplitMix64 rng(0x53444353414D50ull ^
                   (static_cast<std::uint64_t>(steps_done_) *
                    0x9E3779B97F4A7C15ull) ^
                   static_cast<std::uint64_t>(r));
    const int samples = static_cast<int>(
        std::min<std::int64_t>(pol.reexec_sample, tiles));
    for (int s = 0; s < samples; ++s) {
      const std::int64_t t = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(tiles)));
      const std::int64_t begin = t * pol.tile_points;
      const std::int64_t end =
          std::min(begin + pol.tile_points, rs.owned);
      a.f_out = reexec_scratch_a_.data();
      for (std::int64_t i = begin; i < end; ++i)
        lbm::stream_collide_point(a, i);
      a.f_out = reexec_scratch_b_.data();
      for (std::int64_t i = begin; i < end; ++i)
        lbm::stream_collide_point(a, i);

      bool votes_agree = true;
      bool matches_live = true;
      for (int q = 0; q < lbm::kQ && votes_agree; ++q) {
        const std::size_t row = static_cast<std::size_t>(q) *
                                static_cast<std::size_t>(rs.local);
        for (std::int64_t i = begin; i < end; ++i) {
          const std::size_t at = row + static_cast<std::size_t>(i);
          std::uint64_t va = 0, vb = 0, vl = 0;
          std::memcpy(&va, &reexec_scratch_a_[at], sizeof va);
          std::memcpy(&vb, &reexec_scratch_b_[at], sizeof vb);
          std::memcpy(&vl, &rs.current[at], sizeof vl);
          if (va != vb) {
            votes_agree = false;
            break;
          }
          if (va != vl) matches_live = false;
        }
      }
      ++stats_.sdc_checks;
      if (!votes_agree) {
        // The two shadows disagree with each other: the checker itself
        // glitched.  Retract, never escalate.
        ++stats_.sdc_false_positive;
        continue;
      }
      if (!matches_live)
        found.push_back(
            resilience::Sentinel::Mismatch{r, t, steps_done_});
    }
  }
  return handle_sdc(found, /*reexec=*/true);
}

void DistributedSolver::apply_due_bit_flips() {
  while (resilience::FaultEvent* e =
             injected_faults_->match_bit_flip(steps_done_)) {
    // One-shot whether or not the point resolves (it may have belonged to
    // a rank that has since been shrunk away — the global index always
    // lands on some survivor, so in practice it resolves).
    e->fired = true;
    if (e->flip_point < 0 || e->flip_point >= global_->size()) continue;
    const auto gi = static_cast<PointIndex>(e->flip_point);
    const Rank r = partition_.owner[static_cast<std::size_t>(gi)];
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    const auto it = std::lower_bound(rs.owned_global.begin(),
                                     rs.owned_global.end(), gi);
    HEMO_ASSERT(it != rs.owned_global.end() && *it == gi);
    const std::int64_t li = it - rs.owned_global.begin();
    double& v = rs.current[static_cast<std::size_t>(e->flip_q) *
                               static_cast<std::size_t>(rs.local) +
                           static_cast<std::size_t>(li)];
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    bits ^= 1ull << e->flip_bit;
    std::memcpy(&v, &bits, sizeof bits);
    e->fired_rank = r;
    const std::int64_t tp = resilience_->sentinel.tile_points;
    e->fired_tile = tp > 0 ? li / tp : -1;
  }
}

bool DistributedSolver::can_shrink() const {
  return resilience_->shrink.enabled && snapshot_.step >= 0 &&
         survivor_count() - 1 >= resilience_->shrink.min_survivors;
}

std::vector<double> DistributedSolver::snapshot_global_state() const {
  // Reassemble the snapshot into global q-major ordering using the
  // *current* (pre-shrink) ownership.  The snapshot holds every rank's
  // state from before the death, so the dead rank's points are recovered
  // from it — this is the redistribution source for the shrink.
  HEMO_EXPECTS(snapshot_.step >= 0);
  const auto n = static_cast<std::size_t>(global_->size());
  std::vector<double> f(static_cast<std::size_t>(lbm::kQ) * n);
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankState& rs = ranks_[r];
    const std::vector<double>& state = snapshot_.state[r];
    for (std::int64_t li = 0; li < rs.owned; ++li) {
      const auto gi = static_cast<std::size_t>(
          rs.owned_global[static_cast<std::size_t>(li)]);
      for (int q = 0; q < lbm::kQ; ++q)
        f[static_cast<std::size_t>(q) * n + gi] =
            state[static_cast<std::size_t>(q) *
                      static_cast<std::size_t>(rs.local) +
                  static_cast<std::size_t>(li)];
    }
  }
  return f;
}

void DistributedSolver::scatter_global_state(const std::vector<double>& f) {
  // Owned slots only: every ghost (q, slot) the kernel will read is
  // overwritten by the first halo exchange after resumption, so ghosts can
  // stay at the equilibrium fill build_decomposition() gave them.
  const auto n = static_cast<std::size_t>(global_->size());
  for (RankState& rs : ranks_) {
    for (std::int64_t li = 0; li < rs.owned; ++li) {
      const auto gi = static_cast<std::size_t>(
          rs.owned_global[static_cast<std::size_t>(li)]);
      for (int q = 0; q < lbm::kQ; ++q)
        rs.current[static_cast<std::size_t>(q) *
                       static_cast<std::size_t>(rs.local) +
                   static_cast<std::size_t>(li)] =
            f[static_cast<std::size_t>(q) * n + gi];
    }
  }
}

void DistributedSolver::shrink_to_survivors(Rank dead) {
  HEMO_EXPECTS(dead >= 0 && dead < partition_.n_ranks);
  HEMO_EXPECTS(alive_[static_cast<std::size_t>(dead)]);

  // Recover the last consistent global state while the old decomposition
  // is still in place, then retire the rank.
  const std::vector<double> f = snapshot_global_state();
  const std::int64_t resume_step = snapshot_.step;
  const double resume_prev_mass = snapshot_.prev_mass;

  alive_[static_cast<std::size_t>(dead)] = 0;
  ++stats_.rank_deaths;
  stats_.dead_ranks.push_back(dead);

  std::vector<Rank> survivors;
  survivors.reserve(alive_.size());
  for (Rank r = 0; r < partition_.n_ranks; ++r)
    if (alive_[static_cast<std::size_t>(r)]) survivors.push_back(r);

  // Re-bisect over the survivors (original rank ids kept; the dead ranks
  // own zero points), rebuild the halo plan, redistribute the state.
  partition_ =
      decomp::bisection_partition(*global_, partition_.n_ranks, survivors);
  build_decomposition();
  scatter_global_state(f);
  steps_done_ = resume_step;
  prev_mass_ = resume_prev_mass;

  // New epoch: the abandoned step's traffic and the rollback spend belong
  // to the dead decomposition.  The network keeps its permanent state (a
  // FaultyNetwork's dead ranks stay dead — they just no longer carry
  // traffic), and the fresh snapshot anchors future rollbacks to a state
  // that exists on the new decomposition.
  network_->reset();
  rollbacks_used_ = 0;
  suspect_rank_ = -1;
  suspect_count_ = 0;
  snapshot_ = Snapshot{};
  take_snapshot();
  if (sentinel_.has_value()) {
    // New decomposition, new tile geometry: old digests are meaningless.
    sentinel_->reset(partition_.n_ranks);
    sentinel_record_all();
  }

  ++stats_.shrinks;
  stats_.last_recovery_step = resume_step;
  std::ostringstream msg;
  msg << "rank " << dead << " declared dead; re-bisected onto "
      << survivors.size() << " survivor(s), resuming at step " << resume_step
      << " (imbalance " << partition_.imbalance() << ")";
  record("RS005", analysis::Severity::kWarning, "shrink-recovery", msg.str());
}

void DistributedSolver::resilient_step() {
  const resilience::RecoveryPolicy& rec = resilience_->recovery;

  // In-memory chaos (kBitFlip) lands at the step boundary, inside the
  // sentinel's record/verify window — the same place a real cosmic-ray
  // flip in resident device memory would strike.
  if (injected_faults_ != nullptr) apply_due_bit_flips();

  const bool snapshot_due = steps_done_ % rec.checkpoint_interval == 0 &&
                            snapshot_.step != steps_done_;
  if (sentinel_.has_value()) {
    // Verify BEFORE the state is consumed (packed into halos, read by the
    // kernel) and unconditionally before a snapshot is taken, so rollback
    // targets are always verified-clean.
    if (sentinel_verify_all(/*force=*/snapshot_due)) return;
  }
  if (snapshot_due) take_snapshot();

  network_->begin_step(steps_done_);
  Rank suspect = -1;
  if (!resilient_exchange(&suspect)) {
    // Deadline failure detector: consecutive failed attempts blamed on the
    // same unique totally-silent rank escalate it from transient to dead.
    if (suspect >= 0 && suspect == suspect_rank_) {
      ++suspect_count_;
    } else {
      suspect_rank_ = suspect;
      suspect_count_ = suspect >= 0 ? 1 : 0;
    }
    if (suspect >= 0 && can_shrink()) {
      const bool deadline_hit =
          suspect_count_ >= resilience_->shrink.death_deadline;
      const bool rollbacks_exhausted =
          rollbacks_used_ >= rec.max_rollbacks;
      if (deadline_hit || rollbacks_exhausted) {
        shrink_to_survivors(suspect);
        return;
      }
    }
    std::ostringstream why;
    why << "halo exchange failed beyond the retransmission budget at step "
        << steps_done_;
    rollback_or_fault(why.str());
    return;
  }
  suspect_rank_ = -1;
  suspect_count_ = 0;
  advance_state();

  // Compute-SDC cross-check: the step's input still survives in rs.next
  // (the swap's other half), so sampled tiles can be re-executed against
  // the freshly written output while both exist.
  if (sentinel_.has_value() && reexec_vote_sample()) return;

  std::vector<analysis::Diagnostic> health = check_health();
  if (!health.empty()) {
    stats_.health_errors += static_cast<std::int64_t>(health.size());
    stats_.diagnostics.insert(stats_.diagnostics.end(), health.begin(),
                              health.end());
    std::ostringstream why;
    why << "numerical-health guard tripped after step " << steps_done_ - 1;
    rollback_or_fault(why.str());
    return;
  }
  prev_mass_ = total_mass();
  // Close the record/verify window: digest the state the step produced.
  // Anything that changes it before the next verify is corruption.
  if (sentinel_.has_value()) sentinel_record_all();
}

// ---------------------------------------------------------------------------
// Checkpoint / restart.
// ---------------------------------------------------------------------------

void DistributedSolver::save_checkpoint(const std::string& path) const {
  io::BlobWriter writer(path, kCkptMagic, kCkptVersion);
  CkptMeta meta{steps_done_, global_->size(), partition_.n_ranks, lbm::kQ};
  writer.add_record(kMetaTag, &meta, sizeof meta);
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankState& rs = ranks_[r];
    writer.add_record(kRankTagBase + static_cast<std::uint32_t>(r),
                      rs.current,
                      static_cast<std::uint64_t>(lbm::kQ) *
                          static_cast<std::uint64_t>(rs.local) *
                          sizeof(double));
  }
  writer.finish();
}

void DistributedSolver::save_rank_checkpoint(const std::string& path,
                                             Rank r) const {
  HEMO_EXPECTS(r >= 0 && r < partition_.n_ranks);
  io::BlobWriter writer(path, kCkptMagic, kCkptVersion);
  CkptMeta meta{steps_done_, global_->size(), partition_.n_ranks, lbm::kQ};
  writer.add_record(kMetaTag, &meta, sizeof meta);
  const RankState& rs = ranks_[static_cast<std::size_t>(r)];
  writer.add_record(kRankTagBase + static_cast<std::uint32_t>(r), rs.current,
                    static_cast<std::uint64_t>(lbm::kQ) *
                        static_cast<std::uint64_t>(rs.local) *
                        sizeof(double));
  writer.finish();
}

namespace {

CkptMeta read_meta(io::BlobReader& reader, const std::string& path,
                   std::int64_t global_size, int n_ranks) {
  if (reader.at_end())
    throw io::BlobError("checkpoint '" + path + "' has no metadata record");
  const io::BlobRecord rec = reader.next();
  if (rec.tag != kMetaTag || rec.bytes.size() != sizeof(CkptMeta))
    throw io::BlobError("checkpoint '" + path +
                        "': first record is not valid metadata");
  CkptMeta meta;
  std::copy(rec.bytes.begin(), rec.bytes.end(),
            reinterpret_cast<char*>(&meta));
  if (meta.global_size != global_size || meta.n_ranks != n_ranks ||
      meta.q != lbm::kQ)
    throw io::BlobError("checkpoint '" + path +
                        "' was taken for a different solver configuration");
  if (meta.step < 0)
    throw io::BlobError("checkpoint '" + path + "': negative step counter");
  return meta;
}

}  // namespace

void DistributedSolver::restore_checkpoint(const std::string& path) {
  io::BlobReader reader(path, kCkptMagic, kCkptVersion);
  const CkptMeta meta =
      read_meta(reader, path, global_->size(), partition_.n_ranks);

  std::vector<bool> seen(ranks_.size(), false);
  while (!reader.at_end()) {
    const io::BlobRecord rec = reader.next();
    if (rec.tag < kRankTagBase ||
        rec.tag >= kRankTagBase + ranks_.size())
      throw io::BlobError("checkpoint '" + path + "': unknown record tag");
    const std::size_t r = rec.tag - kRankTagBase;
    RankState& rs = ranks_[r];
    const std::size_t expected_bytes = static_cast<std::size_t>(lbm::kQ) *
                                       static_cast<std::size_t>(rs.local) *
                                       sizeof(double);
    if (rec.bytes.size() != expected_bytes)
      throw io::BlobError("checkpoint '" + path + "': rank record size " +
                          std::to_string(rec.bytes.size()) +
                          " does not match this decomposition");
    std::copy(rec.bytes.begin(), rec.bytes.end(),
              reinterpret_cast<char*>(rs.current));
    seen[r] = true;
  }
  for (std::size_t r = 0; r < seen.size(); ++r)
    if (!seen[r])
      throw io::BlobError("checkpoint '" + path + "': no record for rank " +
                          std::to_string(r));

  steps_done_ = meta.step;
  snapshot_ = Snapshot{};  // pre-restore snapshots are no longer valid
  initial_mass_ = prev_mass_ = total_mass();
  if (sentinel_.has_value()) sentinel_record_all();
}

std::int64_t DistributedSolver::restore_rank_checkpoint(
    const std::string& path, Rank r) {
  HEMO_EXPECTS(r >= 0 && r < partition_.n_ranks);
  io::BlobReader reader(path, kCkptMagic, kCkptVersion);
  const CkptMeta meta =
      read_meta(reader, path, global_->size(), partition_.n_ranks);
  const std::uint32_t want = kRankTagBase + static_cast<std::uint32_t>(r);
  while (!reader.at_end()) {
    const io::BlobRecord rec = reader.next();
    if (rec.tag != want) continue;
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    const std::size_t expected_bytes = static_cast<std::size_t>(lbm::kQ) *
                                       static_cast<std::size_t>(rs.local) *
                                       sizeof(double);
    if (rec.bytes.size() != expected_bytes)
      throw io::BlobError("checkpoint '" + path + "': rank record size " +
                          std::to_string(rec.bytes.size()) +
                          " does not match this decomposition");
    std::copy(rec.bytes.begin(), rec.bytes.end(),
              reinterpret_cast<char*>(rs.current));
    steps_done_ = meta.step;
    snapshot_ = Snapshot{};
    initial_mass_ = prev_mass_ = total_mass();
    if (sentinel_.has_value()) sentinel_record_all();
    return meta.step;
  }
  throw io::BlobError("checkpoint '" + path + "': no record for rank " +
                      std::to_string(r));
}

// ---------------------------------------------------------------------------

std::vector<analysis::Diagnostic> DistributedSolver::validate() const {
  std::vector<analysis::Diagnostic> out = analysis::check_lattice(*global_);
  {
    std::vector<analysis::Diagnostic> part =
        analysis::check_partition(*global_, partition_);
    out.insert(out.end(), part.begin(), part.end());
  }

  // The live exchange lists, viewed as a halo plan, must agree with the
  // plan recomputed from the current partition (LC008) and must not route
  // traffic through ranks the partition does not populate (LC011) — the
  // stale-plan hazard of a shrink that forgot to rebuild its exchanges.
  {
    decomp::HaloPlan as_plan;
    as_plan.messages.reserve(exchanges_.size());
    for (const Exchange& e : exchanges_)
      as_plan.messages.push_back(decomp::HaloMessage{
          e.src, e.dst, static_cast<std::int64_t>(e.q.size())});
    std::vector<analysis::Diagnostic> plan_diags =
        analysis::check_halo_plan(*global_, partition_, as_plan);
    out.insert(out.end(), plan_diags.begin(), plan_diags.end());
  }

  // Exchange-level invariants: every pack slot reads an interior (owned)
  // value, every unpack slot writes a ghost slot, and no (q, slot) pair is
  // unpacked twice within one exchange.  A violation means the halo
  // exchange overlaps the interior update of the same step — the
  // distributed analogue of the push-streaming write-write race.
  auto emit = [&out](const std::string& message) {
    out.push_back(analysis::Diagnostic{
        "LC009", analysis::Severity::kError, "halo-exchange", 0, message,
        "rebuild the exchange lists from the current partition"});
  };
  for (const Exchange& e : exchanges_) {
    if (e.src < 0 || e.src >= partition_.n_ranks || e.dst < 0 ||
        e.dst >= partition_.n_ranks || e.src == e.dst) {
      std::ostringstream msg;
      msg << "malformed exchange " << e.src << " -> " << e.dst;
      emit(msg.str());
      continue;
    }
    const RankState& src = ranks_[static_cast<std::size_t>(e.src)];
    const RankState& dst = ranks_[static_cast<std::size_t>(e.dst)];
    std::set<std::pair<int, std::int64_t>> unpack_slots;
    for (std::size_t k = 0; k < e.q.size(); ++k) {
      std::ostringstream at;
      at << "exchange " << e.src << " -> " << e.dst << ", entry " << k;
      if (e.q[k] < 1 || e.q[k] >= lbm::kQ) {
        emit(at.str() + ": direction out of range");
        continue;
      }
      if (e.src_local[k] < 0 || e.src_local[k] >= src.owned)
        emit(at.str() + ": pack slot is not an interior point of the "
                        "sending rank");
      if (e.dst_local[k] < dst.owned || e.dst_local[k] >= dst.local)
        emit(at.str() + ": unpack slot overlaps the receiving rank's "
                        "interior update");
      else if (!unpack_slots.emplace(e.q[k], e.dst_local[k]).second)
        emit(at.str() + ": ghost slot unpacked twice");
    }
  }

  // Cross-exchange auditability (LC010): a (q, slot) unpacked by two
  // different exchanges makes CRC frame failures unattributable to a
  // sender and the final ghost value order-dependent.
  std::vector<analysis::ExchangeSlots> views;
  views.reserve(exchanges_.size());
  for (const Exchange& e : exchanges_) {
    analysis::ExchangeSlots v;
    v.src = e.src;
    v.dst = e.dst;
    v.q = e.q.data();
    v.dst_local = e.dst_local.data();
    v.count = static_cast<std::int64_t>(e.q.size());
    views.push_back(v);
  }
  std::vector<analysis::Diagnostic> audit =
      analysis::check_exchange_auditability(views);
  out.insert(out.end(), audit.begin(), audit.end());
  return out;
}

void DistributedSolver::set_inlet_velocity(double velocity) {
  HEMO_EXPECTS(std::abs(velocity) < 1.0);
  options_.inlet_velocity = velocity;
}

std::vector<double> DistributedSolver::global_distributions() const {
  const auto n = static_cast<std::size_t>(global_->size());
  std::vector<double> out(static_cast<std::size_t>(lbm::kQ) * n);
  for (const RankState& rs : ranks_) {
    for (std::int64_t li = 0; li < rs.owned; ++li) {
      const auto gi =
          static_cast<std::size_t>(rs.owned_global[static_cast<std::size_t>(li)]);
      for (int q = 0; q < lbm::kQ; ++q)
        out[static_cast<std::size_t>(q) * n + gi] =
            rs.current[static_cast<std::size_t>(q) *
                           static_cast<std::size_t>(rs.local) +
                       static_cast<std::size_t>(li)];
    }
  }
  return out;
}

lbm::Moments DistributedSolver::global_moments(PointIndex global_index) const {
  HEMO_EXPECTS(global_index >= 0 && global_index < global_->size());
  const Rank r = partition_.owner[static_cast<std::size_t>(global_index)];
  const RankState& rs = ranks_[static_cast<std::size_t>(r)];
  const auto it = std::lower_bound(rs.owned_global.begin(),
                                   rs.owned_global.end(), global_index);
  HEMO_ASSERT(it != rs.owned_global.end() && *it == global_index);
  const auto li = static_cast<std::size_t>(it - rs.owned_global.begin());
  double f[lbm::kQ];
  for (int q = 0; q < lbm::kQ; ++q)
    f[q] = rs.current[static_cast<std::size_t>(q) *
                          static_cast<std::size_t>(rs.local) +
                      li];
  return lbm::moments_of(f, options_.body_force.x, options_.body_force.y,
                         options_.body_force.z);
}

double DistributedSolver::total_mass() const {
  double mass = 0.0;
  for (const RankState& rs : ranks_)
    for (std::int64_t li = 0; li < rs.owned; ++li)
      for (int q = 0; q < lbm::kQ; ++q)
        mass += rs.current[static_cast<std::size_t>(q) *
                               static_cast<std::size_t>(rs.local) +
                           static_cast<std::size_t>(li)];
  return mass;
}

std::int64_t DistributedSolver::owned_count(Rank r) const {
  HEMO_EXPECTS(r >= 0 && r < partition_.n_ranks);
  return ranks_[static_cast<std::size_t>(r)].owned;
}

int DistributedSolver::survivor_count() const {
  int n = 0;
  for (char a : alive_) n += (a != 0);
  return n;
}

bool DistributedSolver::rank_alive(Rank r) const {
  HEMO_EXPECTS(r >= 0 && r < partition_.n_ranks);
  return alive_[static_cast<std::size_t>(r)] != 0;
}

}  // namespace hemo::harvey
