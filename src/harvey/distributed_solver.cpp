#include "harvey/distributed_solver.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "analysis/lattice_check.hpp"
#include "base/contracts.hpp"
#include "hal/cudax.hpp"
#include "hal/hipx.hpp"
#include "hal/kokkosx.hpp"
#include "hal/syclx.hpp"

namespace hemo::harvey {

DistributedSolver::~DistributedSolver() {
  if (owns_kokkos_runtime_) hal::kokkosx::finalize();
}

DistributedSolver::DistributedSolver(
    std::shared_ptr<const lbm::SparseLattice> global,
    decomp::Partition partition, lbm::SolverOptions options)
    : global_(std::move(global)),
      partition_(std::move(partition)),
      options_(options),
      network_(partition_.n_ranks) {
  HEMO_EXPECTS(global_ != nullptr);
  HEMO_EXPECTS(partition_.owner.size() ==
               static_cast<std::size_t>(global_->size()));
  HEMO_EXPECTS(options_.tau > 0.5);

  const int R = partition_.n_ranks;
  ranks_.resize(static_cast<std::size_t>(R));

  // Local index maps: global point -> (rank-local index) per rank.
  std::vector<std::unordered_map<PointIndex, std::int64_t>> local_of(
      static_cast<std::size_t>(R));

  for (Rank r = 0; r < R; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    rs.owned_global = partition_.points_of(r);
    HEMO_EXPECTS(!rs.owned_global.empty());
    rs.owned = static_cast<std::int64_t>(rs.owned_global.size());
    auto& map = local_of[static_cast<std::size_t>(r)];
    map.reserve(rs.owned_global.size() * 2);
    for (std::int64_t li = 0; li < rs.owned; ++li)
      map.emplace(rs.owned_global[static_cast<std::size_t>(li)], li);
  }

  // Discover ghosts: fluid neighbors of owned points living on other ranks.
  for (Rank r = 0; r < R; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    auto& map = local_of[static_cast<std::size_t>(r)];
    std::vector<PointIndex> ghosts;
    for (PointIndex gi : rs.owned_global) {
      for (int q = 1; q < lbm::kQ; ++q) {
        const PointIndex up = global_->neighbor(q, gi);
        if (up == kSolidNeighbor) continue;
        if (partition_.owner[static_cast<std::size_t>(up)] == r) continue;
        if (map.contains(up)) continue;
        map.emplace(up, 0);  // placeholder; fixed after sorting
        ghosts.push_back(up);
      }
    }
    std::sort(ghosts.begin(), ghosts.end());
    for (std::size_t k = 0; k < ghosts.size(); ++k)
      map[ghosts[k]] = rs.owned + static_cast<std::int64_t>(k);
    rs.local = rs.owned + static_cast<std::int64_t>(ghosts.size());

    // Local adjacency and node types; ghost rows are never executed, so
    // their adjacency stays kSolidNeighbor and their type kBulk.
    rs.adjacency.assign(static_cast<std::size_t>(lbm::kQ) *
                            static_cast<std::size_t>(rs.local),
                        kSolidNeighbor);
    rs.node_type.assign(static_cast<std::size_t>(rs.local),
                        static_cast<std::uint8_t>(lbm::NodeType::kBulk));
    for (std::int64_t li = 0; li < rs.owned; ++li) {
      const PointIndex gi = rs.owned_global[static_cast<std::size_t>(li)];
      rs.node_type[static_cast<std::size_t>(li)] =
          static_cast<std::uint8_t>(global_->node_type(gi));
      for (int q = 0; q < lbm::kQ; ++q) {
        const PointIndex up = global_->neighbor(q, gi);
        if (up == kSolidNeighbor) continue;
        rs.adjacency[static_cast<std::size_t>(q) *
                         static_cast<std::size_t>(rs.local) +
                     static_cast<std::size_t>(li)] = map.at(up);
      }
    }

    // Distributions: everything (ghosts included) starts at equilibrium;
    // the first exchange overwrites ghosts with the owners' identical
    // values, so initialization matches the single-domain solver exactly.
    rs.f_a.resize(static_cast<std::size_t>(lbm::kQ) *
                  static_cast<std::size_t>(rs.local));
    rs.f_b.resize(rs.f_a.size());
    const Vec3& u0 = options_.initial_velocity;
    for (int q = 0; q < lbm::kQ; ++q) {
      const double feq =
          lbm::equilibrium(q, options_.initial_density, u0.x, u0.y, u0.z);
      std::fill_n(rs.f_a.begin() + static_cast<std::ptrdiff_t>(q) * rs.local,
                  rs.local, feq);
    }
    rs.current = rs.f_a.data();
    rs.next = rs.f_b.data();
  }

  // Exchange lists, built centrally in deterministic (dst, local, q) order.
  std::map<std::pair<Rank, Rank>, Exchange> pairs;
  for (Rank d = 0; d < R; ++d) {
    const RankState& rs = ranks_[static_cast<std::size_t>(d)];
    for (std::int64_t li = 0; li < rs.owned; ++li) {
      const PointIndex gi = rs.owned_global[static_cast<std::size_t>(li)];
      for (int q = 1; q < lbm::kQ; ++q) {
        const PointIndex up = global_->neighbor(q, gi);
        if (up == kSolidNeighbor) continue;
        const Rank s = partition_.owner[static_cast<std::size_t>(up)];
        if (s == d) continue;
        Exchange& e = pairs[{s, d}];
        e.src = s;
        e.dst = d;
        e.q.push_back(q);
        e.src_local.push_back(local_of[static_cast<std::size_t>(s)].at(up));
        e.dst_local.push_back(local_of[static_cast<std::size_t>(d)].at(up));
      }
    }
  }
  exchanges_.reserve(pairs.size());
  for (auto& [key, e] : pairs) exchanges_.push_back(std::move(e));
}

lbm::KernelArgs DistributedSolver::rank_args(RankState& rs) const {
  lbm::KernelArgs a;
  a.f_in = rs.current;
  a.f_out = rs.next;
  a.adjacency = rs.adjacency.data();
  a.node_type = rs.node_type.data();
  a.n = rs.local;  // SoA stride spans owned + ghost slots
  a.omega = 1.0 / options_.tau;
  a.force_x = options_.body_force.x;
  a.force_y = options_.body_force.y;
  a.force_z = options_.body_force.z;
  a.inlet_velocity = options_.inlet_velocity;
  a.outlet_density = options_.outlet_density;
  return a;
}

void DistributedSolver::exchange_halos() {
  // Post every send, then drain every receive: the classic halo-exchange
  // schedule (non-blocking sends + receives in MPI terms).
  for (const Exchange& e : exchanges_) {
    const RankState& src = ranks_[static_cast<std::size_t>(e.src)];
    std::vector<double> payload(e.q.size());
    for (std::size_t k = 0; k < e.q.size(); ++k)
      payload[k] = src.current[static_cast<std::size_t>(e.q[k]) *
                                   static_cast<std::size_t>(src.local) +
                               static_cast<std::size_t>(e.src_local[k])];
    network_.send(e.src, e.dst, std::move(payload));
  }
  for (const Exchange& e : exchanges_) {
    RankState& dst = ranks_[static_cast<std::size_t>(e.dst)];
    const std::vector<double> payload = network_.receive(e.dst, e.src);
    HEMO_ASSERT(payload.size() == e.q.size());
    for (std::size_t k = 0; k < e.q.size(); ++k)
      dst.current[static_cast<std::size_t>(e.q[k]) *
                      static_cast<std::size_t>(dst.local) +
                  static_cast<std::size_t>(e.dst_local[k])] = payload[k];
  }
  HEMO_ASSERT(network_.drained());
}

void DistributedSolver::set_execution_model(hal::Model model) {
  namespace kx = hal::kokkosx;
  if (hal::is_kokkos(model)) {
    const hal::Backend backend = hal::backend_of(model);
    if (!kx::is_initialized()) {
      kx::initialize(backend);
      owns_kokkos_runtime_ = true;
    } else {
      HEMO_EXPECTS(kx::current_backend() == backend);
    }
  }
  model_ = model;
}

void DistributedSolver::execute_rank_kernel(RankState& rs) {
  const lbm::KernelArgs a = rank_args(rs);
  const std::int64_t owned = rs.owned;
  auto body = [a, owned](std::int64_t i) {
    if (i >= owned) return;  // dialect grids round up to block multiples
    lbm::stream_collide_point(a, i);
  };

  if (!model_.has_value()) {
    for (std::int64_t i = 0; i < owned; ++i) lbm::stream_collide_point(a, i);
    return;
  }
  switch (hal::backend_of(*model_)) {
    case hal::Backend::kCuda:
    case hal::Backend::kOpenAcc: {
      if (hal::is_kokkos(*model_)) {
        hal::kokkosx::parallel_for("stream_collide",
                                   hal::kokkosx::RangePolicy(0, owned),
                                   body);
      } else {
        const unsigned block = 256;
        const auto grid = static_cast<unsigned>(
            (owned + block - 1) / static_cast<std::int64_t>(block));
        HEMO_ENSURES(cudaxLaunchKernel(dim3x(grid), dim3x(block), body) ==
                     cudaxSuccess);
      }
      break;
    }
    case hal::Backend::kHip: {
      if (hal::is_kokkos(*model_)) {
        hal::kokkosx::parallel_for("stream_collide",
                                   hal::kokkosx::RangePolicy(0, owned),
                                   body);
      } else {
        const unsigned block = 256;
        const auto grid = static_cast<unsigned>(
            (owned + block - 1) / static_cast<std::int64_t>(block));
        HEMO_ENSURES(hipxLaunchKernel(dim3x(grid), dim3x(block), body) ==
                     hipxSuccess);
      }
      break;
    }
    case hal::Backend::kSycl: {
      if (hal::is_kokkos(*model_)) {
        hal::kokkosx::parallel_for("stream_collide",
                                   hal::kokkosx::RangePolicy(0, owned),
                                   body);
      } else {
        hal::syclx::queue queue;
        queue.parallel_for(
            hal::syclx::range<1>(static_cast<std::size_t>(owned)),
            [body](hal::syclx::id<1> i) {
              body(static_cast<std::int64_t>(i));
            });
      }
      break;
    }
  }
}

void DistributedSolver::step() {
  exchange_halos();
  for (RankState& rs : ranks_) {
    execute_rank_kernel(rs);
    std::swap(rs.current, rs.next);
  }
  ++steps_done_;
}

void DistributedSolver::run(int steps) {
  HEMO_EXPECTS(steps >= 0);
  for (int s = 0; s < steps; ++s) step();
}

std::vector<analysis::Diagnostic> DistributedSolver::validate() const {
  std::vector<analysis::Diagnostic> out = analysis::check_lattice(*global_);
  {
    std::vector<analysis::Diagnostic> part =
        analysis::check_partition(*global_, partition_);
    out.insert(out.end(), part.begin(), part.end());
  }

  // Exchange-level invariants: every pack slot reads an interior (owned)
  // value, every unpack slot writes a ghost slot, and no (q, slot) pair is
  // unpacked twice.  A violation means the halo exchange overlaps the
  // interior update of the same step — the distributed analogue of the
  // push-streaming write-write race.
  auto emit = [&out](const std::string& message) {
    out.push_back(analysis::Diagnostic{
        "LC009", analysis::Severity::kError, "halo-exchange", 0, message,
        "rebuild the exchange lists from the current partition"});
  };
  std::set<std::tuple<Rank, int, std::int64_t>> unpack_slots;
  for (const Exchange& e : exchanges_) {
    if (e.src < 0 || e.src >= partition_.n_ranks || e.dst < 0 ||
        e.dst >= partition_.n_ranks || e.src == e.dst) {
      std::ostringstream msg;
      msg << "malformed exchange " << e.src << " -> " << e.dst;
      emit(msg.str());
      continue;
    }
    const RankState& src = ranks_[static_cast<std::size_t>(e.src)];
    const RankState& dst = ranks_[static_cast<std::size_t>(e.dst)];
    for (std::size_t k = 0; k < e.q.size(); ++k) {
      std::ostringstream at;
      at << "exchange " << e.src << " -> " << e.dst << ", entry " << k;
      if (e.q[k] < 1 || e.q[k] >= lbm::kQ) {
        emit(at.str() + ": direction out of range");
        continue;
      }
      if (e.src_local[k] < 0 || e.src_local[k] >= src.owned)
        emit(at.str() + ": pack slot is not an interior point of the "
                        "sending rank");
      if (e.dst_local[k] < dst.owned || e.dst_local[k] >= dst.local)
        emit(at.str() + ": unpack slot overlaps the receiving rank's "
                        "interior update");
      else if (!unpack_slots.emplace(e.dst, e.q[k], e.dst_local[k]).second)
        emit(at.str() + ": ghost slot unpacked twice");
    }
  }
  return out;
}

void DistributedSolver::set_inlet_velocity(double velocity) {
  HEMO_EXPECTS(std::abs(velocity) < 1.0);
  options_.inlet_velocity = velocity;
}

std::vector<double> DistributedSolver::global_distributions() const {
  const auto n = static_cast<std::size_t>(global_->size());
  std::vector<double> out(static_cast<std::size_t>(lbm::kQ) * n);
  for (const RankState& rs : ranks_) {
    for (std::int64_t li = 0; li < rs.owned; ++li) {
      const auto gi =
          static_cast<std::size_t>(rs.owned_global[static_cast<std::size_t>(li)]);
      for (int q = 0; q < lbm::kQ; ++q)
        out[static_cast<std::size_t>(q) * n + gi] =
            rs.current[static_cast<std::size_t>(q) *
                           static_cast<std::size_t>(rs.local) +
                       static_cast<std::size_t>(li)];
    }
  }
  return out;
}

lbm::Moments DistributedSolver::global_moments(PointIndex global_index) const {
  HEMO_EXPECTS(global_index >= 0 && global_index < global_->size());
  const Rank r = partition_.owner[static_cast<std::size_t>(global_index)];
  const RankState& rs = ranks_[static_cast<std::size_t>(r)];
  const auto it = std::lower_bound(rs.owned_global.begin(),
                                   rs.owned_global.end(), global_index);
  HEMO_ASSERT(it != rs.owned_global.end() && *it == global_index);
  const auto li = static_cast<std::size_t>(it - rs.owned_global.begin());
  double f[lbm::kQ];
  for (int q = 0; q < lbm::kQ; ++q)
    f[q] = rs.current[static_cast<std::size_t>(q) *
                          static_cast<std::size_t>(rs.local) +
                      li];
  return lbm::moments_of(f, options_.body_force.x, options_.body_force.y,
                         options_.body_force.z);
}

double DistributedSolver::total_mass() const {
  double mass = 0.0;
  for (const RankState& rs : ranks_)
    for (std::int64_t li = 0; li < rs.owned; ++li)
      for (int q = 0; q < lbm::kQ; ++q)
        mass += rs.current[static_cast<std::size_t>(q) *
                               static_cast<std::size_t>(rs.local) +
                           static_cast<std::size_t>(li)];
  return mass;
}

std::int64_t DistributedSolver::owned_count(Rank r) const {
  HEMO_EXPECTS(r >= 0 && r < partition_.n_ranks);
  return ranks_[static_cast<std::size_t>(r)].owned;
}

}  // namespace hemo::harvey
