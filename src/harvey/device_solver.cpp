#include "harvey/device_solver.hpp"

#include <cstring>

#include "base/contracts.hpp"
#include "hal/cudax.hpp"
#include "hal/hipx.hpp"
#include "hal/kokkosx.hpp"
#include "hal/syclx.hpp"
#include "lbm/aa_layout.hpp"

namespace hemo::harvey {

namespace {

/// Host-side staging of lattice metadata shared by all dialect paths.
/// For the AA pattern the initial equilibrium snapshot is decanonicalized
/// into the even-parity in-place layout before upload, so step 1 on the
/// device is bit-identical to the pull path from the very first gather.
struct HostState {
  std::vector<std::uint8_t> node_type;
  std::vector<double> f_init;

  HostState(const lbm::SparseLattice& lattice,
            const lbm::SolverOptions& options) {
    const auto n = static_cast<std::size_t>(lattice.size());
    node_type.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      node_type[i] = static_cast<std::uint8_t>(
          lattice.node_type(static_cast<PointIndex>(i)));
    f_init.resize(static_cast<std::size_t>(lbm::kQ) * n);
    const Vec3& u0 = options.initial_velocity;
    for (int q = 0; q < lbm::kQ; ++q) {
      const double feq =
          lbm::equilibrium(q, options.initial_density, u0.x, u0.y, u0.z);
      std::fill_n(f_init.begin() + static_cast<std::ptrdiff_t>(q) *
                                       static_cast<std::ptrdiff_t>(n),
                  n, feq);
    }
    if (options.propagation == lbm::Propagation::kAAInPlace) {
      std::vector<double> canonical = f_init;
      lbm::aa_decanonicalize(lattice.adjacency().data(), lattice.size(),
                             /*steps_done=*/0, canonical.data(),
                             f_init.data());
    }
  }
};

lbm::KernelArgs make_args(const double* f_in, double* f_out,
                          const PointIndex* adjacency,
                          const std::uint8_t* node_type, std::int64_t n,
                          const lbm::SolverOptions& o) {
  lbm::KernelArgs a;
  a.f_in = f_in;
  a.f_out = f_out;
  a.adjacency = adjacency;
  a.node_type = node_type;
  a.n = n;
  a.omega = 1.0 / o.tau;
  a.force_x = o.body_force.x;
  a.force_y = o.body_force.y;
  a.force_z = o.body_force.z;
  a.inlet_velocity = o.inlet_velocity;
  a.outlet_density = o.outlet_density;
  return a;
}

/// Args for an AA launch: the single array is all three of f_in/f_out/f
/// (the AA kernels only read .f, but keeping the pull fields pointed at
/// the same storage keeps make_args-built args fully initialized).
lbm::KernelArgs make_aa_args(double* f, const PointIndex* adjacency,
                             const std::uint8_t* node_type, std::int64_t n,
                             const lbm::SolverOptions& o) {
  lbm::KernelArgs a = make_args(f, f, adjacency, node_type, n, o);
  a.f = f;
  return a;
}

}  // namespace

struct DeviceSolver::Impl {
  virtual ~Impl() = default;
  /// One step; `steps_done` is the count completed so far — its parity
  /// selects the even/odd AA kernel (ignored by the pull path).
  virtual void step(const lbm::SolverOptions& options,
                    std::int64_t steps_done) = 0;
  /// Raw distribution array in the pattern's own layout (the pull path's
  /// post-collision SoA, or the AA in-place array); DeviceSolver
  /// canonicalizes on the host.
  virtual std::vector<double> distributions() const = 0;
};

namespace {

// ---------------------------------------------------------------------------
// cudax / hipx paths.  The two are written out separately — not factored
// through a template — because they stand in for two separately maintained
// ports of the same CUDA-shaped code, exactly the maintainability situation
// the paper discusses.  hipx mirrors cudax call-for-call.
// ---------------------------------------------------------------------------

class CudaxImpl final : public DeviceSolver::Impl {
 public:
  CudaxImpl(const lbm::SparseLattice& lattice, const HostState& host,
            lbm::Propagation pattern)
      : n_(lattice.size()), pattern_(pattern) {
    const std::size_t fbytes =
        static_cast<std::size_t>(lbm::kQ) * n_ * sizeof(double);
    HEMO_ENSURES(cudaxMalloc(&f_a_, fbytes) == cudaxSuccess);
    if (pattern_ == lbm::Propagation::kPullSoA)  // AA runs in place
      HEMO_ENSURES(cudaxMalloc(&f_b_, fbytes) == cudaxSuccess);
    HEMO_ENSURES(cudaxMalloc(&adjacency_, lattice.adjacency().size() *
                                              sizeof(PointIndex)) ==
                 cudaxSuccess);
    HEMO_ENSURES(cudaxMalloc(&node_type_, host.node_type.size()) ==
                 cudaxSuccess);
    HEMO_ENSURES(cudaxMemcpy(f_a_, host.f_init.data(), fbytes,
                             cudaxMemcpyHostToDevice) == cudaxSuccess);
    HEMO_ENSURES(cudaxMemcpy(adjacency_, lattice.adjacency().data(),
                             lattice.adjacency().size() * sizeof(PointIndex),
                             cudaxMemcpyHostToDevice) == cudaxSuccess);
    HEMO_ENSURES(cudaxMemcpy(node_type_, host.node_type.data(),
                             host.node_type.size(),
                             cudaxMemcpyHostToDevice) == cudaxSuccess);
  }

  ~CudaxImpl() override {
    cudaxFree(f_a_);
    cudaxFree(f_b_);
    cudaxFree(adjacency_);
    cudaxFree(node_type_);
  }

  void step(const lbm::SolverOptions& options,
            std::int64_t steps_done) override {
    const unsigned block = 256;
    const auto grid =
        static_cast<unsigned>((n_ + block - 1) / static_cast<std::int64_t>(block));
    const std::int64_t n = n_;
    if (pattern_ == lbm::Propagation::kAAInPlace) {
      const lbm::KernelArgs args = make_aa_args(
          static_cast<double*>(f_a_),
          static_cast<const PointIndex*>(adjacency_),
          static_cast<const std::uint8_t*>(node_type_), n_, options);
      if (steps_done % 2 == 0) {
        HEMO_ENSURES(cudaxLaunchKernel(dim3x(grid), dim3x(block),
                                       [args, n](std::int64_t i) {
                                         if (i >= n) return;
                                         lbm::stream_collide_point_aa_even(
                                             args, i);
                                       }) == cudaxSuccess);
      } else {
        HEMO_ENSURES(cudaxLaunchKernel(dim3x(grid), dim3x(block),
                                       [args, n](std::int64_t i) {
                                         if (i >= n) return;
                                         lbm::stream_collide_point_aa_odd(
                                             args, i);
                                       }) == cudaxSuccess);
      }
      HEMO_ENSURES(cudaxDeviceSynchronize() == cudaxSuccess);
      return;
    }
    const lbm::KernelArgs args = make_args(
        static_cast<const double*>(f_a_), static_cast<double*>(f_b_),
        static_cast<const PointIndex*>(adjacency_),
        static_cast<const std::uint8_t*>(node_type_), n_, options);
    HEMO_ENSURES(cudaxLaunchKernel(dim3x(grid), dim3x(block),
                                   [args, n](std::int64_t i) {
                                     if (i >= n) return;
                                     lbm::stream_collide_point(args, i);
                                   }) == cudaxSuccess);
    HEMO_ENSURES(cudaxDeviceSynchronize() == cudaxSuccess);
    std::swap(f_a_, f_b_);
  }

  std::vector<double> distributions() const override {
    std::vector<double> out(static_cast<std::size_t>(lbm::kQ) * n_);
    HEMO_ENSURES(cudaxMemcpy(out.data(), f_a_, out.size() * sizeof(double),
                             cudaxMemcpyDeviceToHost) == cudaxSuccess);
    return out;
  }

 private:
  std::int64_t n_;
  lbm::Propagation pattern_;
  void* f_a_ = nullptr;
  void* f_b_ = nullptr;
  void* adjacency_ = nullptr;
  void* node_type_ = nullptr;
};

class HipxImpl final : public DeviceSolver::Impl {
 public:
  HipxImpl(const lbm::SparseLattice& lattice, const HostState& host,
           lbm::Propagation pattern)
      : n_(lattice.size()), pattern_(pattern) {
    const std::size_t fbytes =
        static_cast<std::size_t>(lbm::kQ) * n_ * sizeof(double);
    HEMO_ENSURES(hipxMalloc(&f_a_, fbytes) == hipxSuccess);
    if (pattern_ == lbm::Propagation::kPullSoA)  // AA runs in place
      HEMO_ENSURES(hipxMalloc(&f_b_, fbytes) == hipxSuccess);
    HEMO_ENSURES(hipxMalloc(&adjacency_, lattice.adjacency().size() *
                                             sizeof(PointIndex)) ==
                 hipxSuccess);
    HEMO_ENSURES(hipxMalloc(&node_type_, host.node_type.size()) ==
                 hipxSuccess);
    HEMO_ENSURES(hipxMemcpy(f_a_, host.f_init.data(), fbytes,
                            hipxMemcpyHostToDevice) == hipxSuccess);
    HEMO_ENSURES(hipxMemcpy(adjacency_, lattice.adjacency().data(),
                            lattice.adjacency().size() * sizeof(PointIndex),
                            hipxMemcpyHostToDevice) == hipxSuccess);
    HEMO_ENSURES(hipxMemcpy(node_type_, host.node_type.data(),
                            host.node_type.size(),
                            hipxMemcpyHostToDevice) == hipxSuccess);
  }

  ~HipxImpl() override {
    hipxFree(f_a_);
    hipxFree(f_b_);
    hipxFree(adjacency_);
    hipxFree(node_type_);
  }

  void step(const lbm::SolverOptions& options,
            std::int64_t steps_done) override {
    const unsigned block = 256;
    const auto grid =
        static_cast<unsigned>((n_ + block - 1) / static_cast<std::int64_t>(block));
    const std::int64_t n = n_;
    if (pattern_ == lbm::Propagation::kAAInPlace) {
      const lbm::KernelArgs args = make_aa_args(
          static_cast<double*>(f_a_),
          static_cast<const PointIndex*>(adjacency_),
          static_cast<const std::uint8_t*>(node_type_), n_, options);
      if (steps_done % 2 == 0) {
        HEMO_ENSURES(hipxLaunchKernel(dim3x(grid), dim3x(block),
                                      [args, n](std::int64_t i) {
                                        if (i >= n) return;
                                        lbm::stream_collide_point_aa_even(
                                            args, i);
                                      }) == hipxSuccess);
      } else {
        HEMO_ENSURES(hipxLaunchKernel(dim3x(grid), dim3x(block),
                                      [args, n](std::int64_t i) {
                                        if (i >= n) return;
                                        lbm::stream_collide_point_aa_odd(
                                            args, i);
                                      }) == hipxSuccess);
      }
      HEMO_ENSURES(hipxDeviceSynchronize() == hipxSuccess);
      return;
    }
    const lbm::KernelArgs args = make_args(
        static_cast<const double*>(f_a_), static_cast<double*>(f_b_),
        static_cast<const PointIndex*>(adjacency_),
        static_cast<const std::uint8_t*>(node_type_), n_, options);
    HEMO_ENSURES(hipxLaunchKernel(dim3x(grid), dim3x(block),
                                  [args, n](std::int64_t i) {
                                    if (i >= n) return;
                                    lbm::stream_collide_point(args, i);
                                  }) == hipxSuccess);
    HEMO_ENSURES(hipxDeviceSynchronize() == hipxSuccess);
    std::swap(f_a_, f_b_);
  }

  std::vector<double> distributions() const override {
    std::vector<double> out(static_cast<std::size_t>(lbm::kQ) * n_);
    HEMO_ENSURES(hipxMemcpy(out.data(), f_a_, out.size() * sizeof(double),
                            hipxMemcpyDeviceToHost) == hipxSuccess);
    return out;
  }

 private:
  std::int64_t n_;
  lbm::Propagation pattern_;
  void* f_a_ = nullptr;
  void* f_b_ = nullptr;
  void* adjacency_ = nullptr;
  void* node_type_ = nullptr;
};

// ---------------------------------------------------------------------------
// syclx path: USM pointers, queue submission, exceptions for errors.
// ---------------------------------------------------------------------------

class SyclxImpl final : public DeviceSolver::Impl {
 public:
  SyclxImpl(const lbm::SparseLattice& lattice, const HostState& host,
            lbm::Propagation pattern)
      : n_(lattice.size()), pattern_(pattern) {
    namespace sx = hal::syclx;
    const std::size_t fcount = static_cast<std::size_t>(lbm::kQ) * n_;
    f_a_ = sx::malloc_device<double>(fcount, queue_);
    if (pattern_ == lbm::Propagation::kPullSoA)  // AA runs in place
      f_b_ = sx::malloc_device<double>(fcount, queue_);
    adjacency_ = sx::malloc_device<PointIndex>(lattice.adjacency().size(),
                                               queue_);
    node_type_ = sx::malloc_device<std::uint8_t>(host.node_type.size(), queue_);
    queue_.memcpy(f_a_, host.f_init.data(), fcount * sizeof(double));
    queue_.memcpy(adjacency_, lattice.adjacency().data(),
                  lattice.adjacency().size() * sizeof(PointIndex));
    queue_.memcpy(node_type_, host.node_type.data(), host.node_type.size());
    queue_.wait();
  }

  ~SyclxImpl() override {
    namespace sx = hal::syclx;
    sx::free(f_a_, queue_);
    if (f_b_ != nullptr) sx::free(f_b_, queue_);
    sx::free(adjacency_, queue_);
    sx::free(node_type_, queue_);
  }

  void step(const lbm::SolverOptions& options,
            std::int64_t steps_done) override {
    namespace sx = hal::syclx;
    if (pattern_ == lbm::Propagation::kAAInPlace) {
      const lbm::KernelArgs args =
          make_aa_args(f_a_, adjacency_, node_type_, n_, options);
      const bool even = steps_done % 2 == 0;
      queue_.submit([&](sx::handler& h) {
        h.parallel_for(sx::range<1>(static_cast<std::size_t>(n_)),
                       [args, even](sx::id<1> i) {
                         const auto p = static_cast<std::int64_t>(i);
                         if (even) {
                           lbm::stream_collide_point_aa_even(args, p);
                         } else {
                           lbm::stream_collide_point_aa_odd(args, p);
                         }
                       });
      });
      queue_.wait();
      return;
    }
    const lbm::KernelArgs args =
        make_args(f_a_, f_b_, adjacency_, node_type_, n_, options);
    queue_.submit([&](sx::handler& h) {
      h.parallel_for(sx::range<1>(static_cast<std::size_t>(n_)),
                     [args](sx::id<1> i) {
                       lbm::stream_collide_point(args,
                                                 static_cast<std::int64_t>(i));
                     });
    });
    queue_.wait();
    std::swap(f_a_, f_b_);
  }

  std::vector<double> distributions() const override {
    std::vector<double> out(static_cast<std::size_t>(lbm::kQ) * n_);
    const_cast<hal::syclx::queue&>(queue_).memcpy(
        out.data(), f_a_, out.size() * sizeof(double));
    return out;
  }

 private:
  hal::syclx::queue queue_;
  std::int64_t n_;
  lbm::Propagation pattern_;
  double* f_a_ = nullptr;
  double* f_b_ = nullptr;
  PointIndex* adjacency_ = nullptr;
  std::uint8_t* node_type_ = nullptr;
};

// ---------------------------------------------------------------------------
// kokkosx path: Views own the device memory, deep_copy stages data in, and
// kernels receive raw pointers through the launch interface (the data()
// idiom the paper adopted to reuse CUDA kernel bodies).
// ---------------------------------------------------------------------------

class KokkosxImpl final : public DeviceSolver::Impl {
 public:
  KokkosxImpl(const lbm::SparseLattice& lattice, const HostState& host,
              hal::Backend backend, lbm::Propagation pattern)
      : n_(lattice.size()),
        pattern_(pattern),
        f_a_("f_a", static_cast<std::size_t>(lbm::kQ) * n_),
        adjacency_("adjacency", lattice.adjacency().size()),
        node_type_("node_type", host.node_type.size()) {
    namespace kx = hal::kokkosx;
    HEMO_EXPECTS(kx::is_initialized() && kx::current_backend() == backend);
    if (pattern_ == lbm::Propagation::kPullSoA)  // AA runs in place
      f_b_ = kx::View<double*>("f_b", static_cast<std::size_t>(lbm::kQ) * n_);

    auto stage = [](auto& view, const auto* src) {
      auto mirror = kx::create_mirror_view(view);
      std::memcpy(mirror.data(), src,
                  view.extent(0) * sizeof(*view.data()));
      kx::deep_copy(view, mirror);
    };
    stage(f_a_, host.f_init.data());
    stage(adjacency_, lattice.adjacency().data());
    stage(node_type_, host.node_type.data());
  }

  void step(const lbm::SolverOptions& options,
            std::int64_t steps_done) override {
    namespace kx = hal::kokkosx;
    if (pattern_ == lbm::Propagation::kAAInPlace) {
      const lbm::KernelArgs args = make_aa_args(
          f_a_.data(), adjacency_.data(), node_type_.data(), n_, options);
      if (steps_done % 2 == 0) {
        kx::parallel_for("stream_collide_aa_even", kx::RangePolicy(0, n_),
                         [args](std::int64_t i) {
                           lbm::stream_collide_point_aa_even(args, i);
                         });
      } else {
        kx::parallel_for("stream_collide_aa_odd", kx::RangePolicy(0, n_),
                         [args](std::int64_t i) {
                           lbm::stream_collide_point_aa_odd(args, i);
                         });
      }
      kx::fence();
      return;
    }
    const lbm::KernelArgs args = make_args(f_a_.data(), f_b_.data(),
                                           adjacency_.data(),
                                           node_type_.data(), n_, options);
    kx::parallel_for("stream_collide", kx::RangePolicy(0, n_),
                     [args](std::int64_t i) {
                       lbm::stream_collide_point(args, i);
                     });
    kx::fence();
    std::swap(f_a_, f_b_);
  }

  std::vector<double> distributions() const override {
    namespace kx = hal::kokkosx;
    auto mirror = kx::create_mirror_view(f_a_);
    kx::deep_copy(mirror, f_a_);
    return std::vector<double>(mirror.data(), mirror.data() + f_a_.extent(0));
  }

 private:
  std::int64_t n_;
  lbm::Propagation pattern_;
  hal::kokkosx::View<double*> f_a_;
  hal::kokkosx::View<double*> f_b_;
  hal::kokkosx::View<PointIndex*> adjacency_;
  hal::kokkosx::View<std::uint8_t*> node_type_;
};

}  // namespace

DeviceSolver::DeviceSolver(std::shared_ptr<const lbm::SparseLattice> lattice,
                           lbm::SolverOptions options, hal::Model model)
    : lattice_(std::move(lattice)), options_(options), model_(model) {
  HEMO_EXPECTS(lattice_ != nullptr);
  HEMO_EXPECTS(options_.tau > 0.5);
  const HostState host(*lattice_, options_);
  const lbm::Propagation pattern = options_.propagation;
  switch (model_) {
    case hal::Model::kCuda:
      impl_ = std::make_unique<CudaxImpl>(*lattice_, host, pattern);
      break;
    case hal::Model::kHip:
      impl_ = std::make_unique<HipxImpl>(*lattice_, host, pattern);
      break;
    case hal::Model::kSycl:
      impl_ = std::make_unique<SyclxImpl>(*lattice_, host, pattern);
      break;
    case hal::Model::kKokkosCuda:
    case hal::Model::kKokkosHip:
    case hal::Model::kKokkosSycl:
    case hal::Model::kKokkosOpenAcc: {
      namespace kx = hal::kokkosx;
      const hal::Backend backend = hal::backend_of(model_);
      if (!kx::is_initialized()) {
        kx::initialize(backend);
        owns_kokkos_runtime_ = true;
      } else {
        // One Kokkos backend per process, as with real Kokkos builds.
        HEMO_EXPECTS(kx::current_backend() == backend);
      }
      impl_ = std::make_unique<KokkosxImpl>(*lattice_, host, backend, pattern);
      break;
    }
  }
}

DeviceSolver::~DeviceSolver() {
  impl_.reset();  // release device views before tearing down the runtime
  if (owns_kokkos_runtime_) hal::kokkosx::finalize();
}

void DeviceSolver::step() {
  impl_->step(options_, steps_done_);
  ++steps_done_;
}

void DeviceSolver::run(int steps) {
  HEMO_EXPECTS(steps >= 0);
  for (int s = 0; s < steps; ++s) step();
}

std::vector<double> DeviceSolver::distributions() const {
  std::vector<double> raw = impl_->distributions();
  if (options_.propagation != lbm::Propagation::kAAInPlace) return raw;
  std::vector<double> canonical(raw.size());
  lbm::aa_canonicalize(lattice_->adjacency().data(), lattice_->size(),
                       steps_done_, raw.data(), canonical.data());
  return canonical;
}

std::vector<double> DeviceSolver::live_distributions() const {
  return impl_->distributions();
}

std::vector<lbm::TileDigest> DeviceSolver::tile_digests(
    std::int64_t tile_points) const {
  const std::vector<double> live = impl_->distributions();
  return lbm::digest_tiles(live.data(), lattice_->size(), lattice_->size(),
                           tile_points, live_layout());
}

lbm::Moments DeviceSolver::moments(PointIndex i) const {
  HEMO_EXPECTS(i >= 0 && i < lattice_->size());
  const std::vector<double> f = distributions();
  const auto n = static_cast<std::size_t>(lattice_->size());
  double fi[lbm::kQ];
  for (int q = 0; q < lbm::kQ; ++q)
    fi[q] = f[static_cast<std::size_t>(q) * n + static_cast<std::size_t>(i)];
  return lbm::moments_of(fi, options_.body_force.x, options_.body_force.y,
                         options_.body_force.z);
}

double DeviceSolver::total_mass() const {
  const std::vector<double> f = distributions();
  double mass = 0.0;
  for (double v : f) mass += v;
  return mass;
}

}  // namespace hemo::harvey
