#pragma once
// DeviceSolver: the production-code path.  Runs the fused stream-collide
// kernel on "device" memory through one of the programming-model dialects
// (mini-CUDA, mini-HIP, mini-SYCL, or mini-Kokkos with any backend),
// mirroring how HARVEY's CUDA kernels were ported to each model in the
// paper.  All dialects produce bit-identical physics; they differ in API
// mechanics and, on real hardware, in performance (modeled by hemo::sim).

#include <cstdint>
#include <memory>
#include <vector>

#include "hal/model.hpp"
#include "lbm/kernels.hpp"
#include "lbm/solver.hpp"
#include "lbm/sparse_lattice.hpp"

namespace hemo::harvey {

class DeviceSolver {
 public:
  DeviceSolver(std::shared_ptr<const lbm::SparseLattice> lattice,
               lbm::SolverOptions options, hal::Model model);
  ~DeviceSolver();

  DeviceSolver(const DeviceSolver&) = delete;
  DeviceSolver& operator=(const DeviceSolver&) = delete;

  void step();
  void run(int steps);

  hal::Model model() const { return model_; }
  PointIndex size() const { return lattice_->size(); }
  std::int64_t step_count() const { return steps_done_; }
  const lbm::SparseLattice& lattice() const { return *lattice_; }

  /// Copies the current post-collision distributions back to the host
  /// (canonical q-major SoA), through the dialect's transfer mechanism.
  /// Under the AA pattern the in-place device array is canonicalized on
  /// the host, so callers see the same snapshot as the pull path.
  std::vector<double> distributions() const;

  /// Host copy of the RAW live device array — no canonicalization — plus
  /// its layout, for SDC probes: the canonical conversion does not read
  /// every AA slot, so only the live view sees all the state a later
  /// kernel step may consume.
  std::vector<double> live_distributions() const;
  lbm::LiveLayout live_layout() const {
    return lbm::live_layout_of(options_.propagation, steps_done_);
  }

  /// Tile digests of the live device state (see lbm/tile_probe.hpp).
  std::vector<lbm::TileDigest> tile_digests(std::int64_t tile_points) const;

  lbm::Moments moments(PointIndex i) const;
  double total_mass() const;

  /// Dialect-specific backend state; public only so the per-dialect
  /// implementations in the .cpp can derive from it.
  struct Impl;

 private:
  std::shared_ptr<const lbm::SparseLattice> lattice_;
  lbm::SolverOptions options_;
  hal::Model model_;
  std::unique_ptr<Impl> impl_;
  std::int64_t steps_done_ = 0;
  bool owns_kokkos_runtime_ = false;
};

}  // namespace hemo::harvey
