#pragma once
// The paper's custom GPU performance model (Section 6), predicting the
// optimal (upper-bound) iteration time of a memory-bandwidth-bound LBM:
//
//   Eq. 1:  t_streamcollide = n_bytes / B_mem
//   Eq. 2:  t = t_streamcollide + sum_j t_comm_j
//   Eq. 3:  SA_comm ~ w * V^(2/3)        (idealized cubic subdomains)
//   Eq. 4:  w = 2 * min(log2(n_gpus), 6)
//
// B_mem is the BabelStream bandwidth of one logical device; communication
// event times come from the PingPong link model.  Architectural efficiency
// in Figs. 5-6 is measured performance divided by this prediction.

#include <cstdint>
#include <vector>

#include "lbm/propagation.hpp"
#include "sys/hardware.hpp"

namespace hemo::perf {

struct ModelParams {
  /// Bytes moved per fluid point per iteration (Eq. 1's n_bytes per
  /// point), derived from the kernels' propagation pattern: the
  /// double-buffered pull scheme reads and writes all 19 double-precision
  /// distributions (2 * 19 * 8 B), the AA in-place scheme makes a single
  /// array pass (19 * 8 B).  The default stays pull-SoA so the paper's
  /// Sec. 6 figures are reproduced unchanged; AA campaigns re-price via
  /// for_propagation().
  double bytes_per_point =
      lbm::propagation_bytes_per_point(lbm::Propagation::kPullSoA);
  /// Bytes exchanged per surface lattice point per event: the ~5
  /// distributions crossing a face, in doubles.
  double halo_bytes_per_surface_point = 5.0 * 8.0;
  /// Saturation of the face-count correction (6 faces of a cube, doubled
  /// for send+receive in Eq. 4).
  int max_log2_faces = 6;

  /// Params whose hot-loop traffic matches the given propagation pattern.
  static ModelParams for_propagation(lbm::Propagation pattern) {
    ModelParams p;
    p.bytes_per_point = lbm::propagation_bytes_per_point(pattern);
    return p;
  }
};

struct Prediction {
  double t_streamcollide_s = 0.0;
  double t_comm_s = 0.0;
  double t_total_s = 0.0;
  double mflups = 0.0;
  double surface_points = 0.0;  // SA_comm of Eq. 3
  int comm_events = 0;
};

class PerformanceModel {
 public:
  explicit PerformanceModel(const sys::SystemSpec& spec,
                            ModelParams params = {});

  /// Eq. 4: w = 2 * min(log2(n_gpus), 6).
  double face_correction(int n_gpus) const;

  /// Eq. 3: SA_comm ~ w * V^(2/3) with V the per-device fluid volume.
  double communication_surface(double points_per_device, int n_gpus) const;

  /// Full prediction (Eqs. 1-2) for n_points fluid points on n_gpus
  /// devices, assuming ideal (perfectly balanced cubic) subdomains.
  Prediction predict(double n_points, int n_gpus) const;

  /// Degraded-mode hook (elastic shrink recovery): the prediction a run
  /// that started on `n_gpus_started` devices but finished on `survivors`
  /// should be judged against.  The shrink re-bisects the whole lattice
  /// over the survivors, so the ideal upper bound is the survivor-count
  /// prediction; judging a degraded run against the devices it *started*
  /// with would fold capacity lost to hardware failure into the framework
  /// efficiency the study is measuring.
  Prediction predict_degraded(double n_points, int n_gpus_started,
                              int survivors) const;

  const sys::SystemSpec& system() const { return spec_; }
  const ModelParams& params() const { return params_; }

 private:
  sys::SystemSpec spec_;
  ModelParams params_;
};

}  // namespace hemo::perf
