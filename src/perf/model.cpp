#include "perf/model.hpp"

#include <algorithm>
#include <cmath>

#include "base/contracts.hpp"

namespace hemo::perf {

PerformanceModel::PerformanceModel(const sys::SystemSpec& spec,
                                   ModelParams params)
    : spec_(spec), params_(params) {
  HEMO_EXPECTS(params_.bytes_per_point > 0.0);
  HEMO_EXPECTS(params_.halo_bytes_per_surface_point > 0.0);
}

double PerformanceModel::face_correction(int n_gpus) const {
  HEMO_EXPECTS(n_gpus >= 1);
  // Eq. 4: for low device counts the idealized cube does not use all six
  // face pairs for halo exchange.
  const double faces = std::min(std::log2(static_cast<double>(n_gpus)),
                                static_cast<double>(params_.max_log2_faces));
  return 2.0 * faces;
}

double PerformanceModel::communication_surface(double points_per_device,
                                               int n_gpus) const {
  HEMO_EXPECTS(points_per_device >= 0.0);
  // Eq. 3: SA ~ w * V^(2/3), the cube-face area doubled for send+receive.
  return face_correction(n_gpus) * std::pow(points_per_device, 2.0 / 3.0);
}

Prediction PerformanceModel::predict(double n_points, int n_gpus) const {
  HEMO_EXPECTS(n_points > 0.0);
  HEMO_EXPECTS(n_gpus >= 1);

  Prediction p;
  const double points_per_device = n_points / n_gpus;

  // Eq. 1: stream-collide time from the BabelStream bandwidth at the
  // working-set size actually resident on the device.
  const auto working_set = static_cast<std::int64_t>(
      points_per_device * params_.bytes_per_point);
  const double bandwidth_Bps =
      sys::babelstream_bandwidth_tbs(spec_, std::max<std::int64_t>(
                                                working_set, 1)) *
      1e12;
  p.t_streamcollide_s =
      points_per_device * params_.bytes_per_point / bandwidth_Bps;

  // Eqs. 3-4: idealized halo surface split into one event per face.
  p.surface_points = communication_surface(points_per_device, n_gpus);
  const double w = face_correction(n_gpus);
  p.comm_events = static_cast<int>(std::ceil(w));

  // Eq. 2: sum PingPong times over all events.  Faces that fit within a
  // node use the intranode link; the rest cross the interconnect.
  if (n_gpus > 1 && p.comm_events > 0) {
    const double bytes_per_event = p.surface_points / w *
                                   params_.halo_bytes_per_surface_point;
    const double intranode_faces =
        std::min(std::log2(static_cast<double>(n_gpus)),
                 std::log2(static_cast<double>(
                     std::max(spec_.devices_per_node, 1))));
    const double total_faces = w / 2.0;
    for (int j = 0; j < p.comm_events; ++j) {
      const bool internode =
          (j / 2) >= static_cast<int>(intranode_faces) &&
          total_faces > intranode_faces;
      const sys::LinkKind link = internode ? sys::LinkKind::kInternode
                                           : sys::LinkKind::kIntranode;
      p.t_comm_s += sys::pingpong_time_s(
          spec_, link, static_cast<std::int64_t>(bytes_per_event));
    }
  }

  p.t_total_s = p.t_streamcollide_s + p.t_comm_s;
  p.mflups = n_points / p.t_total_s / 1e6;
  HEMO_ENSURES(p.mflups > 0.0);
  return p;
}

Prediction PerformanceModel::predict_degraded(double n_points,
                                              int n_gpus_started,
                                              int survivors) const {
  HEMO_EXPECTS(survivors >= 1);
  HEMO_EXPECTS(survivors <= n_gpus_started);
  return predict(n_points, survivors);
}

}  // namespace hemo::perf
