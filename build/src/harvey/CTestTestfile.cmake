# CMake generated Testfile for 
# Source directory: /root/repo/src/harvey
# Build directory: /root/repo/build/src/harvey
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
