file(REMOVE_RECURSE
  "CMakeFiles/hemo_harvey.dir/device_solver.cpp.o"
  "CMakeFiles/hemo_harvey.dir/device_solver.cpp.o.d"
  "CMakeFiles/hemo_harvey.dir/distributed_solver.cpp.o"
  "CMakeFiles/hemo_harvey.dir/distributed_solver.cpp.o.d"
  "libhemo_harvey.a"
  "libhemo_harvey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_harvey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
