file(REMOVE_RECURSE
  "libhemo_harvey.a"
)
