file(REMOVE_RECURSE
  "libhemo_sim.a"
)
