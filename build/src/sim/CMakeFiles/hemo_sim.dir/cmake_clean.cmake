file(REMOVE_RECURSE
  "CMakeFiles/hemo_sim.dir/portability.cpp.o"
  "CMakeFiles/hemo_sim.dir/portability.cpp.o.d"
  "CMakeFiles/hemo_sim.dir/profiles.cpp.o"
  "CMakeFiles/hemo_sim.dir/profiles.cpp.o.d"
  "CMakeFiles/hemo_sim.dir/simulator.cpp.o"
  "CMakeFiles/hemo_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hemo_sim.dir/workload.cpp.o"
  "CMakeFiles/hemo_sim.dir/workload.cpp.o.d"
  "libhemo_sim.a"
  "libhemo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
