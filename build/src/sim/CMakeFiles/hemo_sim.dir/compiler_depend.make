# Empty compiler generated dependencies file for hemo_sim.
# This may be replaced when dependencies are built.
