file(REMOVE_RECURSE
  "CMakeFiles/hemo_io.dir/vtk.cpp.o"
  "CMakeFiles/hemo_io.dir/vtk.cpp.o.d"
  "libhemo_io.a"
  "libhemo_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
