# Empty dependencies file for hemo_proxy.
# This may be replaced when dependencies are built.
