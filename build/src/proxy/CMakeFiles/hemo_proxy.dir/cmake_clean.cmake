file(REMOVE_RECURSE
  "CMakeFiles/hemo_proxy.dir/proxy_app.cpp.o"
  "CMakeFiles/hemo_proxy.dir/proxy_app.cpp.o.d"
  "libhemo_proxy.a"
  "libhemo_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
