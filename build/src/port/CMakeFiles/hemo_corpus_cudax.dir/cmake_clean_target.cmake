file(REMOVE_RECURSE
  "libhemo_corpus_cudax.a"
)
