
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/port/corpus/cudax/adjacency.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/adjacency.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/adjacency.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/bounce_back.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/bounce_back.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/bounce_back.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/checkpoint.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/checkpoint.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/checkpoint.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/collision.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/collision.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/collision.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/comm_buffers.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/comm_buffers.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/comm_buffers.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/constants.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/constants.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/constants.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/device_query.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/device_query.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/device_query.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/distribution_init.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/distribution_init.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/distribution_init.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/forcing.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/forcing.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/forcing.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/geometry_io.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/geometry_io.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/geometry_io.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/halo_pack.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/halo_pack.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/halo_pack.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/halo_unpack.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/halo_unpack.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/halo_unpack.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/inlet.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/inlet.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/inlet.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/macroscopic.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/macroscopic.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/macroscopic.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/main.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/main.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/main.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/managed.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/managed.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/managed.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/memory.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/memory.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/memory.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/outlet.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/outlet.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/outlet.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/reduce_mass.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/reduce_mass.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/reduce_mass.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/reduce_momentum.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/reduce_momentum.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/reduce_momentum.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/stream_collide.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/stream_collide.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/stream_collide.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/streaming.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/streaming.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/streaming.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/streams.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/streams.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/streams.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/timers.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/timers.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/timers.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/vtk_output.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/vtk_output.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/vtk_output.cpp.o.d"
  "/root/repo/src/port/corpus/cudax/wall_shear.cpp" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/wall_shear.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_cudax.dir/corpus/cudax/wall_shear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hal/CMakeFiles/hemo_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
