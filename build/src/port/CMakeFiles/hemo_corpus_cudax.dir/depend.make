# Empty dependencies file for hemo_corpus_cudax.
# This may be replaced when dependencies are built.
