# Empty dependencies file for hemo_corpus_hipx.
# This may be replaced when dependencies are built.
