file(REMOVE_RECURSE
  "libhemo_corpus_hipx.a"
)
