
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/port/corpus/hipx/adjacency.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/adjacency.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/adjacency.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/bounce_back.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/bounce_back.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/bounce_back.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/checkpoint.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/checkpoint.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/checkpoint.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/collision.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/collision.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/collision.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/comm_buffers.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/comm_buffers.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/comm_buffers.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/constants.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/constants.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/constants.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/device_query.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/device_query.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/device_query.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/distribution_init.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/distribution_init.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/distribution_init.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/forcing.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/forcing.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/forcing.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/geometry_io.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/geometry_io.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/geometry_io.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/halo_pack.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/halo_pack.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/halo_pack.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/halo_unpack.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/halo_unpack.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/halo_unpack.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/inlet.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/inlet.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/inlet.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/macroscopic.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/macroscopic.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/macroscopic.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/main.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/main.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/main.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/managed.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/managed.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/managed.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/memory.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/memory.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/memory.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/outlet.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/outlet.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/outlet.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/reduce_mass.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/reduce_mass.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/reduce_mass.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/reduce_momentum.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/reduce_momentum.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/reduce_momentum.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/stream_collide.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/stream_collide.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/stream_collide.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/streaming.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/streaming.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/streaming.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/streams.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/streams.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/streams.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/timers.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/timers.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/timers.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/vtk_output.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/vtk_output.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/vtk_output.cpp.o.d"
  "/root/repo/src/port/corpus/hipx/wall_shear.cpp" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/wall_shear.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_hipx.dir/corpus/hipx/wall_shear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hal/CMakeFiles/hemo_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
