# Empty dependencies file for hemo_corpus_kokkosx.
# This may be replaced when dependencies are built.
