
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/port/corpus/kokkosx/adjacency.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/adjacency.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/adjacency.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/bounce_back.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/bounce_back.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/bounce_back.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/checkpoint.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/checkpoint.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/checkpoint.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/collision.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/collision.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/collision.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/comm_buffers.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/comm_buffers.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/comm_buffers.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/constants.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/constants.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/constants.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/device_query.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/device_query.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/device_query.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/distribution_init.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/distribution_init.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/distribution_init.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/forcing.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/forcing.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/forcing.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/geometry_io.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/geometry_io.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/geometry_io.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/halo_pack.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/halo_pack.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/halo_pack.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/halo_unpack.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/halo_unpack.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/halo_unpack.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/inlet.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/inlet.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/inlet.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/macroscopic.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/macroscopic.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/macroscopic.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/main.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/main.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/main.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/managed.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/managed.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/managed.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/memory.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/memory.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/memory.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/outlet.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/outlet.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/outlet.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/reduce_mass.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/reduce_mass.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/reduce_mass.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/reduce_momentum.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/reduce_momentum.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/reduce_momentum.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/stream_collide.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/stream_collide.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/stream_collide.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/streaming.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/streaming.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/streaming.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/streams.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/streams.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/streams.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/timers.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/timers.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/timers.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/vtk_output.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/vtk_output.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/vtk_output.cpp.o.d"
  "/root/repo/src/port/corpus/kokkosx/wall_shear.cpp" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/wall_shear.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_kokkosx.dir/corpus/kokkosx/wall_shear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hal/CMakeFiles/hemo_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
