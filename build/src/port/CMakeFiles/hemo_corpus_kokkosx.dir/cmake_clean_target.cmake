file(REMOVE_RECURSE
  "libhemo_corpus_kokkosx.a"
)
