file(REMOVE_RECURSE
  "CMakeFiles/hemo_generate_ports.dir/tools/generate_ports.cpp.o"
  "CMakeFiles/hemo_generate_ports.dir/tools/generate_ports.cpp.o.d"
  "hemo_generate_ports"
  "hemo_generate_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_generate_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
