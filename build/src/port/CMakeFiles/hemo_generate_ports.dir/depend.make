# Empty dependencies file for hemo_generate_ports.
# This may be replaced when dependencies are built.
