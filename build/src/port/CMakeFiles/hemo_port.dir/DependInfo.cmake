
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/port/corpus.cpp" "src/port/CMakeFiles/hemo_port.dir/corpus.cpp.o" "gcc" "src/port/CMakeFiles/hemo_port.dir/corpus.cpp.o.d"
  "/root/repo/src/port/dpct.cpp" "src/port/CMakeFiles/hemo_port.dir/dpct.cpp.o" "gcc" "src/port/CMakeFiles/hemo_port.dir/dpct.cpp.o.d"
  "/root/repo/src/port/hipify.cpp" "src/port/CMakeFiles/hemo_port.dir/hipify.cpp.o" "gcc" "src/port/CMakeFiles/hemo_port.dir/hipify.cpp.o.d"
  "/root/repo/src/port/loc.cpp" "src/port/CMakeFiles/hemo_port.dir/loc.cpp.o" "gcc" "src/port/CMakeFiles/hemo_port.dir/loc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/hemo_hal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
