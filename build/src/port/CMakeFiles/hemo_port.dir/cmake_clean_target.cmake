file(REMOVE_RECURSE
  "libhemo_port.a"
)
