# Empty dependencies file for hemo_port.
# This may be replaced when dependencies are built.
