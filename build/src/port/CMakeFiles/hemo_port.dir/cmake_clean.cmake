file(REMOVE_RECURSE
  "CMakeFiles/hemo_port.dir/corpus.cpp.o"
  "CMakeFiles/hemo_port.dir/corpus.cpp.o.d"
  "CMakeFiles/hemo_port.dir/dpct.cpp.o"
  "CMakeFiles/hemo_port.dir/dpct.cpp.o.d"
  "CMakeFiles/hemo_port.dir/hipify.cpp.o"
  "CMakeFiles/hemo_port.dir/hipify.cpp.o.d"
  "CMakeFiles/hemo_port.dir/loc.cpp.o"
  "CMakeFiles/hemo_port.dir/loc.cpp.o.d"
  "libhemo_port.a"
  "libhemo_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
