file(REMOVE_RECURSE
  "libhemo_corpus_syclx.a"
)
