
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/port/corpus/syclx/adjacency.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/adjacency.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/adjacency.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/bounce_back.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/bounce_back.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/bounce_back.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/checkpoint.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/checkpoint.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/checkpoint.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/collision.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/collision.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/collision.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/comm_buffers.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/comm_buffers.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/comm_buffers.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/constants.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/constants.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/constants.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/device_query.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/device_query.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/device_query.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/distribution_init.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/distribution_init.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/distribution_init.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/forcing.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/forcing.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/forcing.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/geometry_io.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/geometry_io.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/geometry_io.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/halo_pack.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/halo_pack.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/halo_pack.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/halo_unpack.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/halo_unpack.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/halo_unpack.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/inlet.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/inlet.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/inlet.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/macroscopic.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/macroscopic.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/macroscopic.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/main.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/main.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/main.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/managed.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/managed.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/managed.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/memory.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/memory.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/memory.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/outlet.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/outlet.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/outlet.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/reduce_mass.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/reduce_mass.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/reduce_mass.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/reduce_momentum.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/reduce_momentum.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/reduce_momentum.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/stream_collide.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/stream_collide.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/stream_collide.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/streaming.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/streaming.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/streaming.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/streams.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/streams.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/streams.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/timers.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/timers.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/timers.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/vtk_output.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/vtk_output.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/vtk_output.cpp.o.d"
  "/root/repo/src/port/corpus/syclx/wall_shear.cpp" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/wall_shear.cpp.o" "gcc" "src/port/CMakeFiles/hemo_corpus_syclx.dir/corpus/syclx/wall_shear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hal/CMakeFiles/hemo_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
