# Empty compiler generated dependencies file for hemo_corpus_syclx.
# This may be replaced when dependencies are built.
