file(REMOVE_RECURSE
  "CMakeFiles/hemo_base.dir/table.cpp.o"
  "CMakeFiles/hemo_base.dir/table.cpp.o.d"
  "libhemo_base.a"
  "libhemo_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
