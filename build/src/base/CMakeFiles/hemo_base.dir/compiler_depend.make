# Empty compiler generated dependencies file for hemo_base.
# This may be replaced when dependencies are built.
