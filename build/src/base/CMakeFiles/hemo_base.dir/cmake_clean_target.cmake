file(REMOVE_RECURSE
  "libhemo_base.a"
)
