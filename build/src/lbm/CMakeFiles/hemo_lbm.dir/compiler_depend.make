# Empty compiler generated dependencies file for hemo_lbm.
# This may be replaced when dependencies are built.
