
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lbm/probes.cpp" "src/lbm/CMakeFiles/hemo_lbm.dir/probes.cpp.o" "gcc" "src/lbm/CMakeFiles/hemo_lbm.dir/probes.cpp.o.d"
  "/root/repo/src/lbm/solver.cpp" "src/lbm/CMakeFiles/hemo_lbm.dir/solver.cpp.o" "gcc" "src/lbm/CMakeFiles/hemo_lbm.dir/solver.cpp.o.d"
  "/root/repo/src/lbm/sparse_lattice.cpp" "src/lbm/CMakeFiles/hemo_lbm.dir/sparse_lattice.cpp.o" "gcc" "src/lbm/CMakeFiles/hemo_lbm.dir/sparse_lattice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
