file(REMOVE_RECURSE
  "CMakeFiles/hemo_lbm.dir/probes.cpp.o"
  "CMakeFiles/hemo_lbm.dir/probes.cpp.o.d"
  "CMakeFiles/hemo_lbm.dir/solver.cpp.o"
  "CMakeFiles/hemo_lbm.dir/solver.cpp.o.d"
  "CMakeFiles/hemo_lbm.dir/sparse_lattice.cpp.o"
  "CMakeFiles/hemo_lbm.dir/sparse_lattice.cpp.o.d"
  "libhemo_lbm.a"
  "libhemo_lbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
