file(REMOVE_RECURSE
  "CMakeFiles/hemo_decomp.dir/partition.cpp.o"
  "CMakeFiles/hemo_decomp.dir/partition.cpp.o.d"
  "libhemo_decomp.a"
  "libhemo_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
