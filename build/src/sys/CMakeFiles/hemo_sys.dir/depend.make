# Empty dependencies file for hemo_sys.
# This may be replaced when dependencies are built.
