file(REMOVE_RECURSE
  "libhemo_sys.a"
)
