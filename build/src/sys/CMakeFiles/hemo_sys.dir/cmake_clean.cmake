file(REMOVE_RECURSE
  "CMakeFiles/hemo_sys.dir/hardware.cpp.o"
  "CMakeFiles/hemo_sys.dir/hardware.cpp.o.d"
  "libhemo_sys.a"
  "libhemo_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
