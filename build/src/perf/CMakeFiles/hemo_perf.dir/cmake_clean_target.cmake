file(REMOVE_RECURSE
  "libhemo_perf.a"
)
