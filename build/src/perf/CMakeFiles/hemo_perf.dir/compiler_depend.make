# Empty compiler generated dependencies file for hemo_perf.
# This may be replaced when dependencies are built.
