file(REMOVE_RECURSE
  "CMakeFiles/hemo_perf.dir/model.cpp.o"
  "CMakeFiles/hemo_perf.dir/model.cpp.o.d"
  "libhemo_perf.a"
  "libhemo_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
