# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("lbm")
subdirs("geom")
subdirs("decomp")
subdirs("hal")
subdirs("comm")
subdirs("harvey")
subdirs("sys")
subdirs("perf")
subdirs("sim")
subdirs("port")
subdirs("proxy")
subdirs("io")
