# Empty dependencies file for hemo_geom.
# This may be replaced when dependencies are built.
