file(REMOVE_RECURSE
  "CMakeFiles/hemo_geom.dir/aorta.cpp.o"
  "CMakeFiles/hemo_geom.dir/aorta.cpp.o.d"
  "CMakeFiles/hemo_geom.dir/cylinder.cpp.o"
  "CMakeFiles/hemo_geom.dir/cylinder.cpp.o.d"
  "libhemo_geom.a"
  "libhemo_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
