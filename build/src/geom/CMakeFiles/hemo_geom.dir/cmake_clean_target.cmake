file(REMOVE_RECURSE
  "libhemo_geom.a"
)
