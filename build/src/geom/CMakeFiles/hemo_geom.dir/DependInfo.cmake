
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/aorta.cpp" "src/geom/CMakeFiles/hemo_geom.dir/aorta.cpp.o" "gcc" "src/geom/CMakeFiles/hemo_geom.dir/aorta.cpp.o.d"
  "/root/repo/src/geom/cylinder.cpp" "src/geom/CMakeFiles/hemo_geom.dir/cylinder.cpp.o" "gcc" "src/geom/CMakeFiles/hemo_geom.dir/cylinder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
