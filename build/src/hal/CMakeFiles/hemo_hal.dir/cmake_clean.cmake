file(REMOVE_RECURSE
  "CMakeFiles/hemo_hal.dir/cudax.cpp.o"
  "CMakeFiles/hemo_hal.dir/cudax.cpp.o.d"
  "CMakeFiles/hemo_hal.dir/device.cpp.o"
  "CMakeFiles/hemo_hal.dir/device.cpp.o.d"
  "CMakeFiles/hemo_hal.dir/hipx.cpp.o"
  "CMakeFiles/hemo_hal.dir/hipx.cpp.o.d"
  "CMakeFiles/hemo_hal.dir/kokkosx.cpp.o"
  "CMakeFiles/hemo_hal.dir/kokkosx.cpp.o.d"
  "CMakeFiles/hemo_hal.dir/syclx.cpp.o"
  "CMakeFiles/hemo_hal.dir/syclx.cpp.o.d"
  "libhemo_hal.a"
  "libhemo_hal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_hal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
