
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hal/cudax.cpp" "src/hal/CMakeFiles/hemo_hal.dir/cudax.cpp.o" "gcc" "src/hal/CMakeFiles/hemo_hal.dir/cudax.cpp.o.d"
  "/root/repo/src/hal/device.cpp" "src/hal/CMakeFiles/hemo_hal.dir/device.cpp.o" "gcc" "src/hal/CMakeFiles/hemo_hal.dir/device.cpp.o.d"
  "/root/repo/src/hal/hipx.cpp" "src/hal/CMakeFiles/hemo_hal.dir/hipx.cpp.o" "gcc" "src/hal/CMakeFiles/hemo_hal.dir/hipx.cpp.o.d"
  "/root/repo/src/hal/kokkosx.cpp" "src/hal/CMakeFiles/hemo_hal.dir/kokkosx.cpp.o" "gcc" "src/hal/CMakeFiles/hemo_hal.dir/kokkosx.cpp.o.d"
  "/root/repo/src/hal/syclx.cpp" "src/hal/CMakeFiles/hemo_hal.dir/syclx.cpp.o" "gcc" "src/hal/CMakeFiles/hemo_hal.dir/syclx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
