file(REMOVE_RECURSE
  "libhemo_hal.a"
)
