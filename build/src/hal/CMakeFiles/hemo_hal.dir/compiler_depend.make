# Empty compiler generated dependencies file for hemo_hal.
# This may be replaced when dependencies are built.
