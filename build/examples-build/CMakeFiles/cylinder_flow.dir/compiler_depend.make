# Empty compiler generated dependencies file for cylinder_flow.
# This may be replaced when dependencies are built.
