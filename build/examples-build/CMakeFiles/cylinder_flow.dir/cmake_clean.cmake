file(REMOVE_RECURSE
  "../examples/cylinder_flow"
  "../examples/cylinder_flow.pdb"
  "CMakeFiles/cylinder_flow.dir/cylinder_flow.cpp.o"
  "CMakeFiles/cylinder_flow.dir/cylinder_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cylinder_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
