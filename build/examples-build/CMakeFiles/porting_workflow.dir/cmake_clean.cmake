file(REMOVE_RECURSE
  "../examples/porting_workflow"
  "../examples/porting_workflow.pdb"
  "CMakeFiles/porting_workflow.dir/porting_workflow.cpp.o"
  "CMakeFiles/porting_workflow.dir/porting_workflow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/porting_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
