# Empty dependencies file for porting_workflow.
# This may be replaced when dependencies are built.
