# Empty dependencies file for aorta_simulation.
# This may be replaced when dependencies are built.
