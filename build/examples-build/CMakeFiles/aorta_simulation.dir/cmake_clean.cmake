file(REMOVE_RECURSE
  "../examples/aorta_simulation"
  "../examples/aorta_simulation.pdb"
  "CMakeFiles/aorta_simulation.dir/aorta_simulation.cpp.o"
  "CMakeFiles/aorta_simulation.dir/aorta_simulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aorta_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
