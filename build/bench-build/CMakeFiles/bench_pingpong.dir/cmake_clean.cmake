file(REMOVE_RECURSE
  "../bench/bench_pingpong"
  "../bench/bench_pingpong.pdb"
  "CMakeFiles/bench_pingpong.dir/bench_pingpong.cpp.o"
  "CMakeFiles/bench_pingpong.dir/bench_pingpong.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
