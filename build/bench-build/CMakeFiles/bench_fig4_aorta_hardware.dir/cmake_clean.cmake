file(REMOVE_RECURSE
  "../bench/bench_fig4_aorta_hardware"
  "../bench/bench_fig4_aorta_hardware.pdb"
  "CMakeFiles/bench_fig4_aorta_hardware.dir/bench_fig4_aorta_hardware.cpp.o"
  "CMakeFiles/bench_fig4_aorta_hardware.dir/bench_fig4_aorta_hardware.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_aorta_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
