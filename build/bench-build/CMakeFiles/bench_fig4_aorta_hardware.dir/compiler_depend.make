# Empty compiler generated dependencies file for bench_fig4_aorta_hardware.
# This may be replaced when dependencies are built.
