# Empty compiler generated dependencies file for bench_ablation_wfactor.
# This may be replaced when dependencies are built.
