file(REMOVE_RECURSE
  "../bench/bench_ablation_wfactor"
  "../bench/bench_ablation_wfactor.pdb"
  "CMakeFiles/bench_ablation_wfactor.dir/bench_ablation_wfactor.cpp.o"
  "CMakeFiles/bench_ablation_wfactor.dir/bench_ablation_wfactor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wfactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
