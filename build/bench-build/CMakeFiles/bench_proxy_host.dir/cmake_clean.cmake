file(REMOVE_RECURSE
  "../bench/bench_proxy_host"
  "../bench/bench_proxy_host.pdb"
  "CMakeFiles/bench_proxy_host.dir/bench_proxy_host.cpp.o"
  "CMakeFiles/bench_proxy_host.dir/bench_proxy_host.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proxy_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
