# Empty compiler generated dependencies file for bench_proxy_host.
# This may be replaced when dependencies are built.
