file(REMOVE_RECURSE
  "../bench/bench_fig5_cylinder_backends"
  "../bench/bench_fig5_cylinder_backends.pdb"
  "CMakeFiles/bench_fig5_cylinder_backends.dir/bench_fig5_cylinder_backends.cpp.o"
  "CMakeFiles/bench_fig5_cylinder_backends.dir/bench_fig5_cylinder_backends.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cylinder_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
