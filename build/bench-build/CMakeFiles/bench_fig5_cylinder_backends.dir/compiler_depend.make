# Empty compiler generated dependencies file for bench_fig5_cylinder_backends.
# This may be replaced when dependencies are built.
