file(REMOVE_RECURSE
  "CMakeFiles/hemo_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/hemo_bench_common.dir/bench_common.cpp.o.d"
  "libhemo_bench_common.a"
  "libhemo_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
