# Empty dependencies file for hemo_bench_common.
# This may be replaced when dependencies are built.
