file(REMOVE_RECURSE
  "libhemo_bench_common.a"
)
