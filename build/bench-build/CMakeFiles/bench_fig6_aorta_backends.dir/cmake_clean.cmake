file(REMOVE_RECURSE
  "../bench/bench_fig6_aorta_backends"
  "../bench/bench_fig6_aorta_backends.pdb"
  "CMakeFiles/bench_fig6_aorta_backends.dir/bench_fig6_aorta_backends.cpp.o"
  "CMakeFiles/bench_fig6_aorta_backends.dir/bench_fig6_aorta_backends.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_aorta_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
