# Empty dependencies file for bench_fig6_aorta_backends.
# This may be replaced when dependencies are built.
