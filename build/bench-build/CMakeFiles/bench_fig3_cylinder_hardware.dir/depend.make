# Empty dependencies file for bench_fig3_cylinder_hardware.
# This may be replaced when dependencies are built.
