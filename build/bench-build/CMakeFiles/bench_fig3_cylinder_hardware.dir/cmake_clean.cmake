file(REMOVE_RECURSE
  "../bench/bench_fig3_cylinder_hardware"
  "../bench/bench_fig3_cylinder_hardware.pdb"
  "CMakeFiles/bench_fig3_cylinder_hardware.dir/bench_fig3_cylinder_hardware.cpp.o"
  "CMakeFiles/bench_fig3_cylinder_hardware.dir/bench_fig3_cylinder_hardware.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cylinder_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
