file(REMOVE_RECURSE
  "../bench/bench_babelstream"
  "../bench/bench_babelstream.pdb"
  "CMakeFiles/bench_babelstream.dir/bench_babelstream.cpp.o"
  "CMakeFiles/bench_babelstream.dir/bench_babelstream.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_babelstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
