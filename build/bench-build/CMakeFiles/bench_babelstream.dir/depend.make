# Empty dependencies file for bench_babelstream.
# This may be replaced when dependencies are built.
