# Empty compiler generated dependencies file for bench_table2_dpct_warnings.
# This may be replaced when dependencies are built.
