file(REMOVE_RECURSE
  "../bench/bench_table2_dpct_warnings"
  "../bench/bench_table2_dpct_warnings.pdb"
  "CMakeFiles/bench_table2_dpct_warnings.dir/bench_table2_dpct_warnings.cpp.o"
  "CMakeFiles/bench_table2_dpct_warnings.dir/bench_table2_dpct_warnings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dpct_warnings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
