file(REMOVE_RECURSE
  "../bench/bench_portability_metric"
  "../bench/bench_portability_metric.pdb"
  "CMakeFiles/bench_portability_metric.dir/bench_portability_metric.cpp.o"
  "CMakeFiles/bench_portability_metric.dir/bench_portability_metric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_portability_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
