# Empty compiler generated dependencies file for bench_portability_metric.
# This may be replaced when dependencies are built.
