file(REMOVE_RECURSE
  "../bench/bench_fig7_runtime_composition"
  "../bench/bench_fig7_runtime_composition.pdb"
  "CMakeFiles/bench_fig7_runtime_composition.dir/bench_fig7_runtime_composition.cpp.o"
  "CMakeFiles/bench_fig7_runtime_composition.dir/bench_fig7_runtime_composition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_runtime_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
