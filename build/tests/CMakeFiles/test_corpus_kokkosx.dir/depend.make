# Empty dependencies file for test_corpus_kokkosx.
# This may be replaced when dependencies are built.
