file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_kokkosx.dir/port/test_corpus_kokkosx.cpp.o"
  "CMakeFiles/test_corpus_kokkosx.dir/port/test_corpus_kokkosx.cpp.o.d"
  "test_corpus_kokkosx"
  "test_corpus_kokkosx.pdb"
  "test_corpus_kokkosx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_kokkosx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
