
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/perf/test_model.cpp" "tests/CMakeFiles/test_perf.dir/perf/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_perf.dir/perf/test_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hemo_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/hemo_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/hemo_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hemo_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/harvey/CMakeFiles/hemo_harvey.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/hemo_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hemo_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hemo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
