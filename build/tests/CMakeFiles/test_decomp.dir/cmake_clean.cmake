file(REMOVE_RECURSE
  "CMakeFiles/test_decomp.dir/decomp/test_partition.cpp.o"
  "CMakeFiles/test_decomp.dir/decomp/test_partition.cpp.o.d"
  "CMakeFiles/test_decomp.dir/decomp/test_partition_random.cpp.o"
  "CMakeFiles/test_decomp.dir/decomp/test_partition_random.cpp.o.d"
  "test_decomp"
  "test_decomp.pdb"
  "test_decomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
