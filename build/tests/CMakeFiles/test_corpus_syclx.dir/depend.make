# Empty dependencies file for test_corpus_syclx.
# This may be replaced when dependencies are built.
