
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/port/test_corpus_syclx.cpp" "tests/CMakeFiles/test_corpus_syclx.dir/port/test_corpus_syclx.cpp.o" "gcc" "tests/CMakeFiles/test_corpus_syclx.dir/port/test_corpus_syclx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/port/CMakeFiles/hemo_corpus_syclx.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/hemo_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
