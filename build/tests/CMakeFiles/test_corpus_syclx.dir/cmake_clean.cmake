file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_syclx.dir/port/test_corpus_syclx.cpp.o"
  "CMakeFiles/test_corpus_syclx.dir/port/test_corpus_syclx.cpp.o.d"
  "test_corpus_syclx"
  "test_corpus_syclx.pdb"
  "test_corpus_syclx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_syclx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
