# Empty dependencies file for test_corpus_hipx.
# This may be replaced when dependencies are built.
