file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_hipx.dir/port/test_corpus_hipx.cpp.o"
  "CMakeFiles/test_corpus_hipx.dir/port/test_corpus_hipx.cpp.o.d"
  "test_corpus_hipx"
  "test_corpus_hipx.pdb"
  "test_corpus_hipx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_hipx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
