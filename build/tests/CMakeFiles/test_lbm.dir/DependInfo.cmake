
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lbm/test_d3q19.cpp" "tests/CMakeFiles/test_lbm.dir/lbm/test_d3q19.cpp.o" "gcc" "tests/CMakeFiles/test_lbm.dir/lbm/test_d3q19.cpp.o.d"
  "/root/repo/tests/lbm/test_hemodynamics.cpp" "tests/CMakeFiles/test_lbm.dir/lbm/test_hemodynamics.cpp.o" "gcc" "tests/CMakeFiles/test_lbm.dir/lbm/test_hemodynamics.cpp.o.d"
  "/root/repo/tests/lbm/test_invariance.cpp" "tests/CMakeFiles/test_lbm.dir/lbm/test_invariance.cpp.o" "gcc" "tests/CMakeFiles/test_lbm.dir/lbm/test_invariance.cpp.o.d"
  "/root/repo/tests/lbm/test_kernels.cpp" "tests/CMakeFiles/test_lbm.dir/lbm/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/test_lbm.dir/lbm/test_kernels.cpp.o.d"
  "/root/repo/tests/lbm/test_probes.cpp" "tests/CMakeFiles/test_lbm.dir/lbm/test_probes.cpp.o" "gcc" "tests/CMakeFiles/test_lbm.dir/lbm/test_probes.cpp.o.d"
  "/root/repo/tests/lbm/test_solver_physics.cpp" "tests/CMakeFiles/test_lbm.dir/lbm/test_solver_physics.cpp.o" "gcc" "tests/CMakeFiles/test_lbm.dir/lbm/test_solver_physics.cpp.o.d"
  "/root/repo/tests/lbm/test_sparse_lattice.cpp" "tests/CMakeFiles/test_lbm.dir/lbm/test_sparse_lattice.cpp.o" "gcc" "tests/CMakeFiles/test_lbm.dir/lbm/test_sparse_lattice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hemo_base.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hemo_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/hemo_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/hemo_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hemo_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/harvey/CMakeFiles/hemo_harvey.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/hemo_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hemo_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hemo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
