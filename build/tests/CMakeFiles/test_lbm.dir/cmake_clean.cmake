file(REMOVE_RECURSE
  "CMakeFiles/test_lbm.dir/lbm/test_d3q19.cpp.o"
  "CMakeFiles/test_lbm.dir/lbm/test_d3q19.cpp.o.d"
  "CMakeFiles/test_lbm.dir/lbm/test_hemodynamics.cpp.o"
  "CMakeFiles/test_lbm.dir/lbm/test_hemodynamics.cpp.o.d"
  "CMakeFiles/test_lbm.dir/lbm/test_invariance.cpp.o"
  "CMakeFiles/test_lbm.dir/lbm/test_invariance.cpp.o.d"
  "CMakeFiles/test_lbm.dir/lbm/test_kernels.cpp.o"
  "CMakeFiles/test_lbm.dir/lbm/test_kernels.cpp.o.d"
  "CMakeFiles/test_lbm.dir/lbm/test_probes.cpp.o"
  "CMakeFiles/test_lbm.dir/lbm/test_probes.cpp.o.d"
  "CMakeFiles/test_lbm.dir/lbm/test_solver_physics.cpp.o"
  "CMakeFiles/test_lbm.dir/lbm/test_solver_physics.cpp.o.d"
  "CMakeFiles/test_lbm.dir/lbm/test_sparse_lattice.cpp.o"
  "CMakeFiles/test_lbm.dir/lbm/test_sparse_lattice.cpp.o.d"
  "test_lbm"
  "test_lbm.pdb"
  "test_lbm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
