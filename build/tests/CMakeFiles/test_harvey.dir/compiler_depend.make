# Empty compiler generated dependencies file for test_harvey.
# This may be replaced when dependencies are built.
