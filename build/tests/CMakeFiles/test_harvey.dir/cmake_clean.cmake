file(REMOVE_RECURSE
  "CMakeFiles/test_harvey.dir/harvey/test_device_solver.cpp.o"
  "CMakeFiles/test_harvey.dir/harvey/test_device_solver.cpp.o.d"
  "CMakeFiles/test_harvey.dir/harvey/test_distributed_solver.cpp.o"
  "CMakeFiles/test_harvey.dir/harvey/test_distributed_solver.cpp.o.d"
  "test_harvey"
  "test_harvey.pdb"
  "test_harvey[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harvey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
