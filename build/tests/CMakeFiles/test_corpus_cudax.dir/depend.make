# Empty dependencies file for test_corpus_cudax.
# This may be replaced when dependencies are built.
