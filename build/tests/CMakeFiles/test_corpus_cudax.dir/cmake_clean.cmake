file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_cudax.dir/port/test_corpus_cudax.cpp.o"
  "CMakeFiles/test_corpus_cudax.dir/port/test_corpus_cudax.cpp.o.d"
  "test_corpus_cudax"
  "test_corpus_cudax.pdb"
  "test_corpus_cudax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_cudax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
