file(REMOVE_RECURSE
  "CMakeFiles/test_hal.dir/hal/test_cudax.cpp.o"
  "CMakeFiles/test_hal.dir/hal/test_cudax.cpp.o.d"
  "CMakeFiles/test_hal.dir/hal/test_device.cpp.o"
  "CMakeFiles/test_hal.dir/hal/test_device.cpp.o.d"
  "CMakeFiles/test_hal.dir/hal/test_hipx.cpp.o"
  "CMakeFiles/test_hal.dir/hal/test_hipx.cpp.o.d"
  "CMakeFiles/test_hal.dir/hal/test_kokkosx.cpp.o"
  "CMakeFiles/test_hal.dir/hal/test_kokkosx.cpp.o.d"
  "CMakeFiles/test_hal.dir/hal/test_syclx.cpp.o"
  "CMakeFiles/test_hal.dir/hal/test_syclx.cpp.o.d"
  "test_hal"
  "test_hal.pdb"
  "test_hal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
