file(REMOVE_RECURSE
  "CMakeFiles/test_port.dir/port/test_dpct.cpp.o"
  "CMakeFiles/test_port.dir/port/test_dpct.cpp.o.d"
  "CMakeFiles/test_port.dir/port/test_hipify.cpp.o"
  "CMakeFiles/test_port.dir/port/test_hipify.cpp.o.d"
  "CMakeFiles/test_port.dir/port/test_loc.cpp.o"
  "CMakeFiles/test_port.dir/port/test_loc.cpp.o.d"
  "test_port"
  "test_port.pdb"
  "test_port[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
