# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_lbm[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_decomp[1]_include.cmake")
include("/root/repo/build/tests/test_hal[1]_include.cmake")
include("/root/repo/build/tests/test_sys[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_harvey[1]_include.cmake")
include("/root/repo/build/tests/test_proxy[1]_include.cmake")
include("/root/repo/build/tests/test_port[1]_include.cmake")
include("/root/repo/build/tests/test_corpus_cudax[1]_include.cmake")
include("/root/repo/build/tests/test_corpus_hipx[1]_include.cmake")
include("/root/repo/build/tests/test_corpus_syclx[1]_include.cmake")
include("/root/repo/build/tests/test_corpus_kokkosx[1]_include.cmake")
