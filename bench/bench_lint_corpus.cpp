// Companion to the Table 2 reproduction: the hemo-lint portability rules
// swept over all four corpus dialects.  Where Table 2 counts what DPCT
// warns about while translating, this table counts the hazards that stay
// *in* each checked-in port — the legacy CUDA base and its HIP twin keep
// every hazard, the DPCT output trades dim3 breakage for removal
// breadcrumbs, and the manual Kokkos port retains only the structural
// ones (raw-pointer captures), mirroring Table 3's effort ordering.

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/rules.hpp"
#include "bench_common.hpp"
#include "port/corpus.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  const std::vector<std::pair<port::CorpusDialect, std::string>> dialects = {
      {port::CorpusDialect::kCudax, "cudax"},
      {port::CorpusDialect::kHipx, "hipx"},
      {port::CorpusDialect::kSyclx, "syclx"},
      {port::CorpusDialect::kKokkosx, "kokkosx"},
  };

  std::vector<std::map<std::string, int>> by_rule;
  std::vector<int> totals;
  for (const auto& [dialect, name] : dialects) {
    const std::vector<analysis::Diagnostic> ds = analysis::lint_corpus(dialect);
    by_rule.push_back(analysis::count_by_rule(ds));
    totals.push_back(static_cast<int>(ds.size()));
  }

  Table table({"Rule", "Hazard", "cudax", "hipx", "syclx", "kokkosx"});
  for (const analysis::LintRule& rule : analysis::lint_rules()) {
    std::vector<std::string> row = {rule.id, rule.name};
    for (const auto& counts : by_rule) {
      const auto it = counts.find(rule.id);
      row.push_back(std::to_string(it == counts.end() ? 0 : it->second));
    }
    table.add_row(row);
  }
  std::vector<std::string> total_row = {"Total", ""};
  for (const int t : totals) total_row.push_back(std::to_string(t));
  table.add_row(total_row);

  bench::emit("hemo-lint: portability hazards per corpus dialect (" +
                  std::to_string(port::corpus_files().size()) +
                  " files each)",
              table);
  return 0;
}
