// Fig. 7 reproduction: composition of the slowest rank's runtime for the
// aorta piecewise scaling on Polaris, Crusher and Sunspot — stream-collide
// (memory accesses), communication events, and the CPU<->GPU staging
// memcopies, as percentages of the iteration.

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  Table table({"System", "Devices", "Streamcollide %", "Communication %",
               "CPU-to-GPU %", "GPU-to-CPU %"});

  // figure_matrix("fig7") is exactly these three series, in this order.
  const auto matrix = bench::run_matrix(rt::figure_matrix("fig7"));

  const sys::SystemId systems[] = {sys::SystemId::kPolaris,
                                   sys::SystemId::kCrusher,
                                   sys::SystemId::kSunspot};
  for (std::size_t i = 0; i < std::size(systems); ++i) {
    const sys::SystemId id = systems[i];
    const sys::SystemSpec& spec = sys::system_spec(id);
    const auto& series = matrix[i];
    for (const auto& p : series) {
      const sim::Composition& c = p.sim.worst_rank;
      const double total = c.total_s();
      table.add_row({spec.name, bench::device_label(p.schedule),
                     Table::num(100.0 * c.streamcollide_s / total, 1),
                     Table::num(100.0 * c.comm_s / total, 1),
                     Table::num(100.0 * c.h2d_s / total, 1),
                     Table::num(100.0 * c.d2h_s / total, 1)});
    }
  }

  bench::emit(
      "Fig. 7: runtime composition of the slowest rank, HARVEY aorta "
      "piecewise scaling",
      table);
  return 0;
}
