// Ablation: communication overlap and host-staged MPI.  Two sensitivity
// studies on simulator modeling choices that map to real code behaviour:
//
//  (a) GPU-aware versus host-staged MPI for HIP on Summit — the paper had
//      to disable GPU-aware message passing (Section 7.2.2); this bench
//      shows what that costs across the schedule.
//  (b) Communication-efficiency sensitivity for native HIP on Crusher:
//      the four-NIC Slingshot is the reason HIP becomes competitive at
//      scale; degrading comm_efficiency erases the crossover.

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  // (a) Summit HIP: staged vs GPU-aware.
  Table staging({"Devices", "Staged MFLUPS", "GPU-aware MFLUPS",
                 "Penalty %"});
  {
    const sim::BackendProfile staged =
        sim::profile_for(sys::SystemId::kSummit, hal::Model::kHip);
    sim::BackendProfile aware = staged;
    aware.host_staged_mpi = false;
    const sim::ClusterSimulator cs_staged(sys::SystemId::kSummit,
                                          hal::Model::kHip,
                                          sim::App::kHarvey, staged);
    const sim::ClusterSimulator cs_aware(sys::SystemId::kSummit,
                                         hal::Model::kHip,
                                         sim::App::kHarvey, aware);
    for (const auto& sp : sys::piecewise_schedule(1024)) {
      const double a =
          cs_staged
              .simulate(bench::aorta_workload(), sp.devices,
                        sp.size_multiplier)
              .mflups;
      const double b = cs_aware
                           .simulate(bench::aorta_workload(), sp.devices,
                                     sp.size_multiplier)
                           .mflups;
      staging.add_row({bench::device_label(sp), Table::num(a, 0),
                       Table::num(b, 0),
                       Table::num(100.0 * (b - a) / b, 1)});
    }
  }
  bench::emit("Ablation (a): host-staged vs GPU-aware MPI, Summit HIP "
              "HARVEY aorta",
              staging);

  // (b) Crusher HIP comm-efficiency sweep: where does the crossover vs
  // Polaris CUDA move?
  Table sweep({"comm_efficiency", "First win vs Polaris (devices)",
               "MFLUPS at 512"});
  const auto polaris = bench::run_series(sys::SystemId::kPolaris,
                                         hal::Model::kCuda,
                                         sim::App::kHarvey,
                                         bench::aorta_workload());
  for (const double eff : {1.0, 0.75, 0.5, 0.25}) {
    sim::BackendProfile profile =
        sim::profile_for(sys::SystemId::kCrusher, hal::Model::kHip);
    profile.comm_efficiency = eff;
    const sim::ClusterSimulator cs(sys::SystemId::kCrusher, hal::Model::kHip,
                                   sim::App::kHarvey, profile);
    int first_win = 0;
    double at512 = 0.0;
    std::size_t k = 0;
    for (const auto& sp : sys::piecewise_schedule(1024)) {
      const sim::SimPoint p =
          cs.simulate(bench::aorta_workload(), sp.devices,
                      sp.size_multiplier);
      if (first_win == 0 && p.mflups > polaris[k].sim.mflups)
        first_win = sp.devices;
      if (sp.devices == 512) at512 = p.mflups;
      ++k;
    }
    sweep.add_row({Table::num(eff, 2),
                   first_win == 0 ? "never" : std::to_string(first_win),
                   Table::num(at512, 0)});
  }
  bench::emit("Ablation (b): Crusher HIP comm-efficiency sweep (aorta)",
              sweep);
  return 0;
}
