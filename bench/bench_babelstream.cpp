// BabelStream substrate: the bandwidth measurement feeding Eq. 1 of the
// performance model.  Reports the simulated device bandwidth over a sweep
// of array sizes for each system, plus a *real* host triad measurement of
// this machine (the substrate the HAL dialects actually execute on).

#include <chrono>
#include <vector>

#include "bench_common.hpp"

namespace {

/// Real host STREAM-triad: a(i) = b(i) + s * c(i), best of `reps`.
double host_triad_gbs(std::size_t doubles, int reps) {
  std::vector<double> a(doubles, 0.0), b(doubles, 1.0), c(doubles, 2.0);
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < doubles; ++i) a[i] = b[i] + 0.4 * c[i];
    const auto stop = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(stop - start).count();
    const double gbs = 3.0 * doubles * sizeof(double) / s / 1e9;
    if (gbs > best) best = gbs;
  }
  // Defeat dead-code elimination.
  if (a[doubles / 2] < -1.0) std::abort();
  return best;
}

}  // namespace

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  Table table({"System", "Array (MiB)", "Bandwidth (TB/s)"});
  for (const sys::SystemId id : sys::kAllSystems) {
    const sys::SystemSpec& spec = sys::system_spec(id);
    for (const std::int64_t mib : {1, 4, 16, 64, 256, 1024}) {
      table.add_row({spec.name, std::to_string(mib),
                     Table::num(sys::babelstream_bandwidth_tbs(
                                    spec, mib * 1024 * 1024),
                                3)});
    }
  }
  bench::emit("BabelStream (simulated devices): bandwidth vs array size",
              table);

  Table host({"Substrate", "Array (MiB)", "Triad (GB/s)"});
  for (const std::size_t mib : {8, 32, 64}) {
    host.add_row({"host engine", std::to_string(mib),
                  Table::num(host_triad_gbs(mib * 1024 * 1024 / 8, 3), 2)});
  }
  bench::emit("BabelStream (real host triad)", host);
  return 0;
}
