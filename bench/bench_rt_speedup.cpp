// hemo-rt acceptance bench: wall-clock of a Fig. 5-sized campaign on the
// campaign runtime versus the pre-runtime serial path, plus the proof that
// the outputs are bit-identical.
//
// The serial baseline reproduces the status quo this runtime replaces:
// every series voxelizes its workload and builds its decompositions and
// halo plans from scratch (fresh sim::Workload per series, nothing shared
// between series).  The runtime path prices the same matrix as one
// campaign per worker count, sharing those artifacts through a fresh
// ArtifactCache each time — so on a single-core container the speedup is
// dominated by artifact reuse, and on multi-core machines work stealing
// compounds it.  Results are compared with exact double equality: any
// drift from the serial path is a failure, not a tolerance.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace hemo;
namespace bench = hemo::bench;

struct SerialPoint {
  sys::SchedulePoint schedule;
  sim::SimPoint sim;
  perf::Prediction prediction;
};

/// The pre-runtime path: one fresh workload per series, schedule points
/// priced in order on the calling thread.
std::vector<std::vector<SerialPoint>> run_serial(
    const std::vector<rt::SeriesSpec>& specs) {
  std::vector<std::vector<SerialPoint>> out;
  out.reserve(specs.size());
  for (const rt::SeriesSpec& spec : specs) {
    sim::Workload workload = rt::make_workload(spec.workload);
    const sim::ClusterSimulator simulator(spec.system, spec.model, spec.app);
    const std::vector<sys::SchedulePoint> schedule = sys::piecewise_schedule(
        sys::system_spec(spec.system).max_devices);
    std::vector<SerialPoint> series;
    series.reserve(schedule.size());
    for (const sys::SchedulePoint& sp : schedule) {
      SerialPoint point;
      point.schedule = sp;
      point.sim = simulator.simulate(workload, sp.devices, sp.size_multiplier);
      point.prediction =
          simulator.predict(workload, sp.devices, sp.size_multiplier);
      series.push_back(point);
    }
    out.push_back(std::move(series));
  }
  return out;
}

bool bit_identical(const std::vector<std::vector<SerialPoint>>& serial,
                   const rt::CampaignResult& campaign) {
  if (campaign.series.size() != serial.size()) return false;
  for (std::size_t s = 0; s < serial.size(); ++s) {
    const auto& points = campaign.series[s].points;
    if (points.size() != serial[s].size()) return false;
    for (std::size_t k = 0; k < points.size(); ++k) {
      const SerialPoint& a = serial[s][k];
      const rt::PointResult& b = points[k];
      if (!b.ok()) return false;
      if (a.schedule.devices != b.schedule.devices ||
          a.schedule.size_multiplier != b.schedule.size_multiplier)
        return false;
      // Exact comparisons on purpose: determinism means the same bits.
      if (a.sim.mflups != b.sim.mflups ||
          a.sim.iteration_s != b.sim.iteration_s ||
          a.sim.total_points != b.sim.total_points ||
          a.sim.worst_rank.streamcollide_s != b.sim.worst_rank.streamcollide_s ||
          a.sim.worst_rank.comm_s != b.sim.worst_rank.comm_s ||
          a.sim.worst_rank.h2d_s != b.sim.worst_rank.h2d_s ||
          a.sim.worst_rank.d2h_s != b.sim.worst_rank.d2h_s ||
          a.prediction.mflups != b.prediction.mflups)
        return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::vector<rt::SeriesSpec> matrix = rt::figure_matrix("fig5");
  using clock = std::chrono::steady_clock;

  Table table({"Path", "Workers", "Wall s", "Speedup", "Cache hits",
               "Cache misses", "Hit rate %", "Steals", "Bit-identical"});

  const clock::time_point serial_start = clock::now();
  const auto serial = run_serial(matrix);
  const double serial_s =
      std::chrono::duration<double>(clock::now() - serial_start).count();
  table.add_row({"serial (per-series rebuild)", "1", Table::num(serial_s, 3),
                 Table::num(1.0, 2), "-", "-", "-", "-", "-"});

  bool all_identical = true;
  bool fast_enough = false;
  bool cache_effective = false;
  for (const int workers : {1, 2, 4, 8}) {
    rt::CampaignSpec spec;
    spec.name = "rt-speedup-fig5";
    spec.series = matrix;
    spec.workers = workers;

    rt::ArtifactCache cache;  // fresh per run: cold start every time
    const rt::CampaignResult result = rt::run_campaign(spec, cache);

    const bool identical = bit_identical(serial, result);
    all_identical = all_identical && identical;
    const double speedup = serial_s / result.wall_s;
    if (workers >= 4 && speedup >= 2.0) fast_enough = true;
    if (result.cache.hit_rate() > 0.5) cache_effective = true;

    table.add_row({"hemo-rt campaign", std::to_string(result.workers),
                   Table::num(result.wall_s, 3), Table::num(speedup, 2),
                   std::to_string(result.cache.hits),
                   std::to_string(result.cache.misses),
                   Table::num(100.0 * result.cache.hit_rate(), 1),
                   std::to_string(result.executor.stolen),
                   identical ? "yes" : "NO"});
  }

  hemo::bench::emit(
      "hemo-rt speedup: Fig. 5 campaign (" + std::to_string(matrix.size()) +
          " series), runtime vs per-series serial rebuild",
      table);

  if (!all_identical) {
    std::cerr << "FAIL: campaign results differ from the serial path\n";
    return 1;
  }
  if (!fast_enough)
    std::cerr << "WARN: <2x speedup at 4+ workers on this machine\n";
  if (!cache_effective)
    std::cerr << "WARN: cache hit rate never exceeded 50%\n";
  return 0;
}
