// Fig. 5 reproduction: software backend comparison on the cylinder.
// For each system, every available programming model runs both HARVEY and
// the proxy app over the piecewise schedule; the first block reports
// application efficiency (vs the best observed model at each count), the
// second architectural efficiency (vs the performance-model prediction).

#include "bench_common.hpp"

namespace {

using namespace hemo;
namespace bench = hemo::bench;

void backend_block(sys::SystemId id, sim::App app, Table& app_eff_table,
                   Table& arch_eff_table) {
  const sys::SystemSpec& spec = sys::system_spec(id);
  const char* app_name = app == sim::App::kHarvey ? "HARVEY" : "ProxyApp";

  std::vector<hal::Model> models = spec.harvey_models;
  std::vector<std::vector<bench::SeriesPoint>> all;
  for (const hal::Model m : models)
    all.push_back(
        bench::run_series(id, m, app, bench::cylinder_workload()));

  const std::size_t n_points = all.front().size();
  for (std::size_t k = 0; k < n_points; ++k) {
    double best = 0.0;
    for (const auto& series : all)
      best = std::max(best, series[k].sim.mflups);
    for (std::size_t m = 0; m < models.size(); ++m) {
      const auto& p = all[m][k];
      app_eff_table.add_row(
          {spec.name, app_name, std::string(hal::name_of(models[m])),
           bench::device_label(p.schedule),
           Table::num(p.sim.mflups / best, 3)});
      arch_eff_table.add_row(
          {spec.name, app_name, std::string(hal::name_of(models[m])),
           bench::device_label(p.schedule),
           Table::num(p.sim.mflups / p.prediction.mflups, 3)});
    }
  }
}

}  // namespace

int main() {
  Table app_eff({"System", "App", "Model", "Devices", "App efficiency"});
  Table arch_eff({"System", "App", "Model", "Devices", "Arch efficiency"});

  for (const sys::SystemId id : sys::kAllSystems) {
    backend_block(id, sim::App::kHarvey, app_eff, arch_eff);
    backend_block(id, sim::App::kProxy, app_eff, arch_eff);
  }

  bench::emit(
      "Fig. 5 (top row): cylinder application efficiencies, all backends",
      app_eff);
  bench::emit(
      "Fig. 5 (bottom row): cylinder architectural efficiencies, all "
      "backends",
      arch_eff);
  return 0;
}
