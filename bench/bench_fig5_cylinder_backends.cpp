// Fig. 5 reproduction: software backend comparison on the cylinder.
// For each system, every available programming model runs both HARVEY and
// the proxy app over the piecewise schedule; the first block reports
// application efficiency (vs the best observed model at each count), the
// second architectural efficiency (vs the performance-model prediction).
// The full {system} x {model} x {app} matrix is priced in one campaign.

#include "bench_common.hpp"

namespace {

using namespace hemo;
namespace bench = hemo::bench;

void backend_block(sys::SystemId id, sim::App app,
                   const std::vector<std::vector<bench::SeriesPoint>>& all,
                   Table& app_eff_table, Table& arch_eff_table) {
  const sys::SystemSpec& spec = sys::system_spec(id);
  const char* app_name = app == sim::App::kHarvey ? "HARVEY" : "ProxyApp";

  const std::vector<hal::Model>& models = spec.harvey_models;
  const std::size_t n_points = all.front().size();
  for (std::size_t k = 0; k < n_points; ++k) {
    double best = 0.0;
    for (const auto& series : all)
      best = std::max(best, series[k].sim.mflups);
    for (std::size_t m = 0; m < models.size(); ++m) {
      const auto& p = all[m][k];
      app_eff_table.add_row(
          {spec.name, app_name, std::string(hal::name_of(models[m])),
           bench::device_label(p.schedule),
           Table::num(p.sim.mflups / best, 3)});
      arch_eff_table.add_row(
          {spec.name, app_name, std::string(hal::name_of(models[m])),
           bench::device_label(p.schedule),
           Table::num(p.sim.mflups / p.prediction.mflups, 3)});
    }
  }
}

}  // namespace

int main() {
  Table app_eff({"System", "App", "Model", "Devices", "App efficiency"});
  Table arch_eff({"System", "App", "Model", "Devices", "Arch efficiency"});

  // figure_matrix("fig5") orders series (system, app, model), matching
  // the consumption order below.
  const auto matrix = bench::run_matrix(rt::figure_matrix("fig5"));

  std::size_t next = 0;
  for (const sys::SystemId id : sys::kAllSystems) {
    const std::size_t n_models = sys::system_spec(id).harvey_models.size();
    for (const sim::App app : {sim::App::kHarvey, sim::App::kProxy}) {
      const std::vector<std::vector<bench::SeriesPoint>> all(
          matrix.begin() + static_cast<std::ptrdiff_t>(next),
          matrix.begin() + static_cast<std::ptrdiff_t>(next + n_models));
      next += n_models;
      backend_block(id, app, all, app_eff, arch_eff);
    }
  }

  bench::emit(
      "Fig. 5 (top row): cylinder application efficiencies, all backends",
      app_eff);
  bench::emit(
      "Fig. 5 (bottom row): cylinder architectural efficiencies, all "
      "backends",
      arch_eff);
  return 0;
}
