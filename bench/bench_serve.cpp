// hemo-serve acceptance bench: lock-striped ArtifactCache throughput
// versus the single-mutex configuration under multi-tenant contention,
// plus the durability cost of the hemo-durable write-ahead journal
// (fsync-per-record vs group commit, raw appends and end-to-end).
//
// The serving tier points every tenant's campaign at one shared cache, so
// the cache mutex is the first structure that melts when concurrent
// tenants arrive.  This bench measures steady-state get_or_compute hits
// (the serving hot path: artifacts already resident, every lookup is a
// hash + LRU touch under the lock) across a thread sweep, for one shard
// (the pre-serve global-mutex cache) and for the 16 shards hemo_serve
// boots with.  The acceptance bar from the issue: >= 4x throughput at
// 8+ threads.
//
// Each thread walks its own stride through a shared key set, so threads
// collide on shards but rarely on keys — the serving pattern, where
// tenants share a working set much larger than the thread count.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "rt/cache.hpp"
#include "rt/campaign.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"

namespace {

using namespace hemo;

constexpr std::size_t kKeys = 64;
constexpr double kSecondsPerRun = 0.25;

std::vector<std::string> make_keys() {
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i)
    keys.push_back("point/bench/devices=" + std::to_string(1 + i) +
                   "/size=1");
  return keys;
}

/// Hot lookups/second over `threads` workers against a pre-populated
/// cache with `shards` lock stripes.
double hit_throughput(std::size_t shards, std::size_t threads,
                      const std::vector<std::string>& keys) {
  rt::ArtifactCache cache(/*capacity=*/2 * kKeys, shards);
  for (const std::string& key : keys)
    cache.get_or_compute<int>(key, [] { return std::make_shared<int>(1); });

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t local = 0;
      // Coprime stride per thread: every thread covers all keys but in a
      // different order, spreading simultaneous lookups across shards.
      const std::size_t stride = 2 * t + 1;
      for (std::size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const std::string& key = keys[(i * stride) % kKeys];
        volatile int sink = *cache.get_or_compute<int>(
            key, [] { return std::make_shared<int>(1); });
        (void)sink;
        ++local;
      }
      lookups.fetch_add(local, std::memory_order_relaxed);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kSecondsPerRun));
  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(lookups.load()) / elapsed;
}

// ---------------------------------------------------------------------------
// Journal overhead: how much durability costs, and how group commit
// amortizes it.
// ---------------------------------------------------------------------------

/// Raw append throughput of the WAL at a given group-commit window: a
/// fixed record count of realistic point payloads, timed wall-clock.
/// The fsync column is exact — one sync per full window plus the final
/// explicit sync().
double journal_append_seconds(const std::string& path,
                              std::size_t group_commit,
                              std::size_t records) {
  std::remove(path.c_str());
  serve::WalBuffer payload;
  rt::PointResult result;
  result.schedule.devices = 8;
  result.attempts = 1;
  result.sim.mflups = 8961.574538231;
  serve::wal_encode_point(&payload, 1, 0, 3, result);

  serve::JournalOptions options;
  options.path = path;
  options.group_commit = group_commit;
  const auto start = std::chrono::steady_clock::now();
  {
    serve::Journal journal(options);
    for (std::size_t i = 0; i < records; ++i)
      journal.append(serve::WalTag::kPoint, payload);
    journal.sync();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::remove(path.c_str());
  return elapsed;
}

/// End-to-end: one campaign submitted and drained through a Server, with
/// the journal off / strict / group-committed.  group_commit = 0 means no
/// journal at all.
double serve_campaign_seconds(const std::string& path,
                              std::size_t group_commit) {
  std::remove(path.c_str());
  serve::ServeOptions options;
  options.workers = 4;
  if (group_commit > 0) {
    serve::JournalOptions journal;
    journal.path = path;
    journal.group_commit = group_commit;
    options.journal = journal;
  }
  rt::SeriesSpec spec;
  if (!rt::parse_series("polaris:cuda:harvey:cylinder-slab", &spec)) {
    std::cerr << "bench_serve: series parse failed\n";
    std::exit(EXIT_FAILURE);
  }
  const auto start = std::chrono::steady_clock::now();
  {
    serve::Server server(options);
    serve::ServeHandle client(server, "bench");
    const serve::Server::SubmitOutcome outcome =
        client.submit("journal-overhead", {spec});
    if (!outcome.admitted) {
      std::cerr << "bench_serve: submit rejected: " << outcome.detail << "\n";
      std::exit(EXIT_FAILURE);
    }
    client.wait(outcome.request_id);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::remove(path.c_str());
  return elapsed;
}

void journal_overhead_section() {
  std::cout << "hemo-durable: write-ahead journal overhead\n"
               "(group_commit = records per fsync; 1 = strict WAL)\n\n";

  const std::string wal = "bench_serve_journal.wal";
  constexpr std::size_t kRecords = 2000;
  Table appends({"Group commit", "Records", "Fsyncs", "Wall ms",
                 "Appends/s"});
  for (const std::size_t group : {std::size_t{1}, std::size_t{8},
                                  std::size_t{32}, kRecords}) {
    journal_append_seconds(wal, group, kRecords / 4);  // warm-up
    const double seconds = journal_append_seconds(wal, group, kRecords);
    const std::size_t fsyncs = kRecords / group + (kRecords % group ? 1 : 0);
    appends.add_row({group == kRecords ? "whole log" : std::to_string(group),
                     std::to_string(kRecords), std::to_string(fsyncs),
                     Table::num(seconds * 1e3, 2),
                     Table::num(static_cast<double>(kRecords) / seconds, 0)});
  }
  appends.print_aligned(std::cout);
  std::cout << "\n";

  // One serve round per mode: the absolute campaign times include real
  // point execution, so the delta column is the durability cost a tenant
  // actually observes.
  const double none = serve_campaign_seconds(wal, 0);
  Table campaign({"Journal", "Campaign ms", "Overhead"});
  campaign.add_row({"off", Table::num(none * 1e3, 1), "-"});
  for (const std::size_t group : {std::size_t{1}, std::size_t{32}}) {
    const double seconds = serve_campaign_seconds(wal, group);
    const double overhead = (seconds - none) / none * 100.0;
    campaign.add_row(
        {group == 1 ? "fsync every record" : "group commit 32",
         Table::num(seconds * 1e3, 1),
         (overhead >= 0 ? "+" : "") + Table::num(overhead, 1) + "%"});
  }
  campaign.print_aligned(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  const std::vector<std::string> keys = make_keys();
  const std::size_t hardware = std::max(1u, std::thread::hardware_concurrency());

  std::cout << "hemo-serve: sharded artifact cache vs single mutex\n"
            << "(steady-state hits, " << kKeys << " resident keys, "
            << hardware << " hardware threads)\n\n";

  Table table({"Threads", "1 shard Mops/s", "16 shards Mops/s", "Speedup"});
  bool met_bar = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    // Warm-up pass absorbs first-touch page faults and clock ramp.
    hit_throughput(1, threads, keys);
    const double single = hit_throughput(1, threads, keys);
    const double sharded = hit_throughput(16, threads, keys);
    const double speedup = sharded / single;
    table.add_row({std::to_string(threads), Table::num(single / 1e6, 2),
                   Table::num(sharded / 1e6, 2), Table::num(speedup, 2)});
    // The acceptance bar only binds where there are enough hardware
    // threads to actually contend.
    if (threads >= 8 && hardware >= 8 && speedup < 4.0) met_bar = false;
  }
  table.print_aligned(std::cout);
  std::cout << "\n";

  journal_overhead_section();

  if (!met_bar) {
    std::cout << "FAIL: sharded cache under 4x at 8+ threads\n";
    return EXIT_FAILURE;
  }
  std::cout << "sharding bar met: >= 4x at 8+ threads (where hardware "
               "allows)\n";
  return EXIT_SUCCESS;
}
