#pragma once
// Shared plumbing for the table/figure benchmark binaries: workload
// construction, schedule series, and consistent text/CSV output.
//
// Since the hemo-rt campaign runtime landed, every series is priced as a
// job graph on the work-stealing executor (HEMO_RT_WORKERS workers, one
// process-wide artifact cache), and run_matrix() lets a binary submit its
// whole evaluation matrix at once.  Results are bit-identical to the old
// serial loop at any worker count.

#include <iostream>
#include <string>
#include <vector>

#include "base/table.hpp"
#include "rt/campaign.hpp"
#include "sim/simulator.hpp"
#include "sys/hardware.hpp"

namespace hemo::bench {

/// Lazily constructed, shared across one binary's sections.  Routed
/// through artifact_cache(), so a binary that also runs campaigns shares
/// the voxelization with them.
sim::Workload& cylinder_workload();
sim::Workload& aorta_workload();

/// Process-wide artifact cache (voxelizations, decompositions, halo
/// plans) behind every series of this binary.
rt::ArtifactCache& artifact_cache();

/// Campaign worker count: HEMO_RT_WORKERS if set (clamped to [1, 64]),
/// otherwise the hardware concurrency.
int rt_workers();

struct SeriesPoint {
  sys::SchedulePoint schedule;
  sim::SimPoint sim;
  perf::Prediction prediction;
};

/// Simulates the full piecewise schedule for one (system, model, app),
/// executed as schedule-point jobs on the campaign runtime.
std::vector<SeriesPoint> run_series(sys::SystemId system, hal::Model model,
                                    sim::App app, sim::Workload& workload);

/// Prices many series concurrently on the campaign runtime.  Results are
/// in spec order with points in schedule order; any failed point aborts
/// the binary (bench tables must be complete).
std::vector<std::vector<SeriesPoint>> run_matrix(
    const std::vector<rt::SeriesSpec>& specs);

/// Device-count label ("2", "4", ... with the size multiplier suffixed at
/// the weak-scaling duplicates, e.g. "16*").
std::string device_label(const sys::SchedulePoint& sp);

/// Prints a titled table as aligned text followed by CSV, the format all
/// bench binaries share so results can be both read and parsed.  When
/// HEMO_BENCH_CSV_DIR is set, the CSV block is also written to
/// <dir>/<sanitized title>.csv so campaign and CI runs get machine-
/// readable artifacts without scraping stdout.
void emit(const std::string& title, const Table& table);

/// One curve of an ASCII plot.
struct PlotSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> values;  // one per x position
};

/// Renders a log-y ASCII chart (the shape of the paper's figures) with
/// one column group per x label and one glyph per series.
void emit_ascii_plot(const std::string& title,
                     const std::vector<std::string>& x_labels,
                     const std::vector<PlotSeries>& series, int height = 18);

}  // namespace hemo::bench
