#pragma once
// Shared plumbing for the table/figure benchmark binaries: workload
// construction, schedule series, and consistent text/CSV output.

#include <iostream>
#include <string>
#include <vector>

#include "base/table.hpp"
#include "sim/simulator.hpp"
#include "sys/hardware.hpp"

namespace hemo::bench {

/// Lazily constructed, shared across one binary's sections.
sim::Workload& cylinder_workload();
sim::Workload& aorta_workload();

struct SeriesPoint {
  sys::SchedulePoint schedule;
  sim::SimPoint sim;
  perf::Prediction prediction;
};

/// Simulates the full piecewise schedule for one (system, model, app).
std::vector<SeriesPoint> run_series(sys::SystemId system, hal::Model model,
                                    sim::App app, sim::Workload& workload);

/// Device-count label ("2", "4", ... with the size multiplier suffixed at
/// the weak-scaling duplicates, e.g. "16*").
std::string device_label(const sys::SchedulePoint& sp);

/// Prints a titled table as aligned text followed by CSV, the format all
/// bench binaries share so results can be both read and parsed.
void emit(const std::string& title, const Table& table);

/// One curve of an ASCII plot.
struct PlotSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> values;  // one per x position
};

/// Renders a log-y ASCII chart (the shape of the paper's figures) with
/// one column group per x label and one glyph per series.
void emit_ascii_plot(const std::string& title,
                     const std::vector<std::string>& x_labels,
                     const std::vector<PlotSeries>& series, int height = 18);

}  // namespace hemo::bench
