// Fig. 6 reproduction: software backend comparison on the aorta.  HARVEY
// only (the proxy was not designed for this load balancing, Section 8.1):
// application and architectural efficiencies for every backend on every
// system, priced as one campaign on the runtime.

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  Table app_eff({"System", "Model", "Devices", "App efficiency"});
  Table arch_eff({"System", "Model", "Devices", "Arch efficiency"});

  const auto matrix = bench::run_matrix(rt::figure_matrix("fig6"));

  std::size_t next = 0;
  for (const sys::SystemId id : sys::kAllSystems) {
    const sys::SystemSpec& spec = sys::system_spec(id);

    const std::vector<std::vector<bench::SeriesPoint>> all(
        matrix.begin() + static_cast<std::ptrdiff_t>(next),
        matrix.begin() +
            static_cast<std::ptrdiff_t>(next + spec.harvey_models.size()));
    next += spec.harvey_models.size();

    const std::size_t n_points = all.front().size();
    for (std::size_t k = 0; k < n_points; ++k) {
      double best = 0.0;
      for (const auto& series : all)
        best = std::max(best, series[k].sim.mflups);
      for (std::size_t m = 0; m < spec.harvey_models.size(); ++m) {
        const auto& p = all[m][k];
        app_eff.add_row({spec.name,
                         std::string(hal::name_of(spec.harvey_models[m])),
                         bench::device_label(p.schedule),
                         Table::num(p.sim.mflups / best, 3)});
        arch_eff.add_row({spec.name,
                          std::string(hal::name_of(spec.harvey_models[m])),
                          bench::device_label(p.schedule),
                          Table::num(p.sim.mflups / p.prediction.mflups, 3)});
      }
    }
  }

  bench::emit("Fig. 6 (top row): aorta HARVEY application efficiencies",
              app_eff);
  bench::emit(
      "Fig. 6 (bottom row): aorta HARVEY architectural efficiencies",
      arch_eff);
  return 0;
}
