// Beyond the paper's figures: the quantitative version of its central
// trade-off.  Pennycook's performance-portability metric PP (harmonic
// mean of per-platform efficiencies; zero for applications that do not
// run everywhere) computed for every programming model, both workloads,
// and both efficiency definitions of Section 8.1.  Kokkos is the only
// model that can score against the full platform set — the paper's
// "greatest portability, but not necessarily the best performance",
// in one number.

#include "bench_common.hpp"
#include "sim/portability.hpp"

namespace {

using namespace hemo;
namespace bench = hemo::bench;

void emit_block(sim::App app, sim::Workload& workload, const char* name) {
  Table table({"Model", "Platforms", "Summit", "Polaris", "Crusher",
               "Sunspot", "PP (supported)", "PP (all systems)"});

  for (const sim::EfficiencyKind kind :
       {sim::EfficiencyKind::kApplication,
        sim::EfficiencyKind::kArchitectural}) {
    const auto rows =
        sim::portability_table(app, workload, /*device_count=*/64,
                               /*size_multiplier=*/2, kind);
    const char* kind_name = kind == sim::EfficiencyKind::kApplication
                                ? " [app eff]"
                                : " [arch eff]";
    for (const sim::PortabilityRow& row : rows) {
      auto cell = [&](sys::SystemId id) -> std::string {
        auto it = row.efficiency.find(id);
        return it == row.efficiency.end() ? "-" : Table::num(it->second, 3);
      };
      table.add_row({std::string(hal::name_of(row.model)) + kind_name,
                     std::to_string(row.platforms),
                     cell(sys::SystemId::kSummit),
                     cell(sys::SystemId::kPolaris),
                     cell(sys::SystemId::kCrusher),
                     cell(sys::SystemId::kSunspot),
                     Table::num(row.pp_supported, 3),
                     row.pp_all == 0.0 ? "0 (not portable)"
                                       : Table::num(row.pp_all, 3)});
    }
  }
  bench::emit(std::string("Performance portability (PP), ") + name +
                  ", 64 devices",
              table);
}

}  // namespace

int main() {
  emit_block(sim::App::kHarvey, bench::cylinder_workload(),
             "HARVEY cylinder");
  emit_block(sim::App::kHarvey, bench::aorta_workload(), "HARVEY aorta");
  return 0;
}
