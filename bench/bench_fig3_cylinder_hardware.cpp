// Fig. 3 reproduction: hardware comparison on the idealized cylinder.
// Piecewise strong scaling of each system's *native* programming model —
// HARVEY, the LBM proxy app, and the ideal performance-model prediction —
// in raw MFLUPS over 2..1024 devices (256 on Sunspot).  The whole matrix
// is submitted to the campaign runtime in one run_matrix() call.

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  Table table({"System (native model)", "Series", "Devices", "Size",
               "MFLUPS"});

  const auto matrix = bench::run_matrix(rt::figure_matrix("fig3"));

  std::size_t next = 0;
  for (const sys::SystemId id : sys::kAllSystems) {
    const sys::SystemSpec& spec = sys::system_spec(id);
    const std::string label =
        spec.name + " (" + std::string(hal::name_of(spec.native_model)) + ")";

    const auto& harvey = matrix[next++];
    const auto& proxy = matrix[next++];

    for (const auto& p : harvey)
      table.add_row({label, "HARVEY", bench::device_label(p.schedule),
                     std::to_string(12 * p.schedule.size_multiplier),
                     Table::num(p.sim.mflups, 0)});
    for (const auto& p : proxy)
      table.add_row({label, "LBM-Proxy-App", bench::device_label(p.schedule),
                     std::to_string(12 * p.schedule.size_multiplier),
                     Table::num(p.sim.mflups, 0)});
    for (const auto& p : harvey)
      table.add_row({label, "Ideal Prediction",
                     bench::device_label(p.schedule),
                     std::to_string(12 * p.schedule.size_multiplier),
                     Table::num(p.prediction.mflups, 0)});

    std::vector<std::string> x_labels;
    bench::PlotSeries h{"HARVEY", 'H', {}};
    bench::PlotSeries x{"LBM-Proxy-App", 'P', {}};
    bench::PlotSeries i{"Ideal Prediction", '.', {}};
    for (std::size_t k = 0; k < harvey.size(); ++k) {
      x_labels.push_back(bench::device_label(harvey[k].schedule));
      h.values.push_back(harvey[k].sim.mflups);
      x.values.push_back(proxy[k].sim.mflups);
      i.values.push_back(harvey[k].prediction.mflups);
    }
    bench::emit_ascii_plot("Fig. 3 panel: " + label + ", MFLUPS vs devices",
                           x_labels, {h, x, i});
  }

  bench::emit(
      "Fig. 3: cylinder hardware comparison, native models "
      "(proxy sizes 12/24/48 at 2-16/16-128/128-1024 devices)",
      table);
  return 0;
}
