// Ablation: decomposition strategy.  The paper contrasts HARVEY's load
// bisection balancer with the proxy's simplistic scheme (Section 10).
// This bench quantifies why on both geometries: per-rank balance and the
// worst-rank halo volume under slab versus bisection partitioning.
// Slabs stay perfectly balanced on the cylinder but their cross-section
// halos do not shrink with rank count; bisection trades a hair of
// balance for compact, surface-law halos.

#include "bench_common.hpp"
#include "geom/aorta.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  Table table({"Geometry", "Scheme", "Ranks", "Imbalance",
               "Max rank halo (values)", "Halo/points ratio"});

  struct Case {
    const char* name;
    sim::DecompositionKind kind;
  };
  const Case cases[] = {{"slab", sim::DecompositionKind::kSlab},
                        {"bisection", sim::DecompositionKind::kBisection}};

  for (const Case& c : cases) {
    sim::Workload w = sim::Workload::cylinder(c.kind);
    for (const int ranks : {4, 16, 64, 256, 1024}) {
      const sim::RankStats& stats = w.stats(ranks);
      std::vector<double> halo(static_cast<std::size_t>(ranks), 0.0);
      for (const auto& m : stats.halos) {
        halo[static_cast<std::size_t>(m.src)] += m.values;
        halo[static_cast<std::size_t>(m.dst)] += m.values;
      }
      double max_halo = 0.0;
      for (const double v : halo) max_halo = std::max(max_halo, v);
      const double max_points = static_cast<double>(
          *std::max_element(stats.points.begin(), stats.points.end()));
      table.add_row({"cylinder", c.name, std::to_string(ranks),
                     Table::num(stats.imbalance, 4),
                     Table::num(max_halo, 0),
                     Table::num(max_halo / max_points, 3)});
    }
  }

  // The aorta only makes sense under bisection (the paper's point), but
  // showing the slab numbers demonstrates why.
  for (const Case& c : cases) {
    geom::AortaSpec spec;  // default measurement instance
    auto lattice = geom::make_aorta_lattice(spec);
    for (const int ranks : {16, 128}) {
      const decomp::Partition p =
          c.kind == sim::DecompositionKind::kSlab
              ? decomp::slab_partition(*lattice, ranks)
              : decomp::bisection_partition(*lattice, ranks);
      const decomp::HaloPlan plan = decomp::build_halo_plan(*lattice, p);
      const double max_halo =
          static_cast<double>(plan.max_rank_send_values(ranks)) * 2.0;
      const double ratio = static_cast<double>(plan.total_values()) /
                           static_cast<double>(lattice->size());
      table.add_row({std::string("aorta"), std::string(c.name),
                     std::to_string(ranks), Table::num(p.imbalance(), 4),
                     Table::num(max_halo, 0), Table::num(ratio, 3)});
    }
  }

  bench::emit("Ablation: slab vs load-bisection decomposition", table);
  return 0;
}
