// Real host execution of the proxy app through every programming-model
// dialect: the functional-portability demonstration.  MFLUPS here are
// *host* numbers (the substrate is the CPU engine); the cross-model
// spread shows dialect overheads, not device performance.

#include "bench_common.hpp"
#include "proxy/proxy_app.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  proxy::ProxyConfig config;
  config.scale = 0.75;  // length 63, radius 6
  const int steps = 40;

  Table table({"Model", "Fluid points", "Steps", "Host MFLUPS"});
  for (const hal::Model m : hal::kAllModels) {
    proxy::ProxyApp app(config);
    const proxy::ProxyMeasurement r = app.run_on_model(m, steps);
    table.add_row({std::string(hal::name_of(m)),
                   std::to_string(r.fluid_points), std::to_string(r.steps),
                   Table::num(r.mflups, 2)});
  }

  // The message-passing path: slab-decomposed multi-rank runs.
  Table ranks({"Ranks", "Fluid points", "Steps", "Host MFLUPS"});
  for (const int r : {1, 2, 4, 8}) {
    proxy::ProxyConfig c = config;
    c.ranks = r;
    proxy::ProxyApp app(c);
    const proxy::ProxyMeasurement m = app.run(steps);
    ranks.add_row({std::to_string(r), std::to_string(m.fluid_points),
                   std::to_string(m.steps), Table::num(m.mflups, 2)});
  }

  bench::emit("Proxy app on the host engine, all dialects", table);
  bench::emit("Proxy app on the host engine, slab-decomposed ranks", ranks);
  return 0;
}
