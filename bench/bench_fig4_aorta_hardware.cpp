// Fig. 4 reproduction: hardware comparison on the patient-derived aorta
// (synthetic substitute): HARVEY piecewise scaling in each system's
// native model versus the ideal performance-model prediction.  Grid
// spacings follow the paper: 110 / 55 / 27.5 micron at the three
// piecewise segments.

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  Table table({"System (native model)", "Series", "Devices",
               "Spacing (um)", "MFLUPS"});

  auto spacing_label = [](int multiplier) {
    // Base 110 um; each doubling of the linear size halves the spacing.
    return Table::num(110.0 / multiplier, multiplier == 4 ? 1 : 0);
  };

  // One campaign over the four native-model HARVEY aorta series.
  const auto matrix = bench::run_matrix(rt::figure_matrix("fig4"));

  std::vector<std::string> x_labels;
  std::vector<bench::PlotSeries> curves;
  const char glyphs[] = {'S', 'P', 'C', 'U'};
  int glyph_index = 0;
  std::size_t next = 0;
  for (const sys::SystemId id : sys::kAllSystems) {
    const sys::SystemSpec& spec = sys::system_spec(id);
    const std::string label =
        spec.name + " (" + std::string(hal::name_of(spec.native_model)) + ")";

    const auto& harvey = matrix[next++];

    bench::PlotSeries curve{spec.name, glyphs[glyph_index++], {}};
    for (const auto& p : harvey) {
      curve.values.push_back(p.sim.mflups);
      if (x_labels.size() < harvey.size())
        x_labels.push_back(bench::device_label(p.schedule));
      table.add_row({label, "HARVEY", bench::device_label(p.schedule),
                     spacing_label(p.schedule.size_multiplier),
                     Table::num(p.sim.mflups, 0)});
    }
    curves.push_back(std::move(curve));
    for (const auto& p : harvey)
      table.add_row({label, "Predicted", bench::device_label(p.schedule),
                     spacing_label(p.schedule.size_multiplier),
                     Table::num(p.prediction.mflups, 0)});
  }
  bench::emit_ascii_plot(
      "Fig. 4: HARVEY aorta MFLUPS vs devices, native models", x_labels,
      curves);

  bench::emit(
      "Fig. 4: aorta hardware comparison, native models "
      "(grid spacings 110/55/27.5 um at 2-16/16-128/128-1024 devices)",
      table);
  return 0;
}
