// Google-benchmark microbenchmarks of the LBM kernels on the host engine:
// the fused stream-collide versus the two-pass pipeline (ablation), the
// SoA versus AoS storage layout (ablation), and the boundary-condition
// cost on inlet/outlet-capped geometry.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "geom/cylinder.hpp"
#include "lbm/kernels.hpp"
#include "lbm/solver.hpp"

namespace {

using namespace hemo;

struct KernelFixture {
  std::shared_ptr<lbm::SparseLattice> lattice;
  std::vector<double> f_in, f_out;
  std::vector<std::uint8_t> types;
  lbm::KernelArgs args;

  explicit KernelFixture(geom::CylinderEnds ends, double radius = 8.0,
                         double length = 24.0) {
    geom::CylinderSpec spec;
    spec.scale = 1.0;
    spec.radius_per_scale = radius;
    spec.axial_per_scale = length;
    lattice = geom::make_cylinder_lattice(spec, ends);
    const auto n = static_cast<std::size_t>(lattice->size());
    f_in.resize(static_cast<std::size_t>(lbm::kQ) * n);
    f_out.resize(f_in.size());
    types.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      types[i] = static_cast<std::uint8_t>(
          lattice->node_type(static_cast<PointIndex>(i)));
    for (int q = 0; q < lbm::kQ; ++q)
      std::fill_n(f_in.begin() + static_cast<std::ptrdiff_t>(q) *
                                     static_cast<std::ptrdiff_t>(n),
                  n, lbm::equilibrium(q, 1.0, 0.0, 0.0, 0.01));

    args.f_in = f_in.data();
    args.f_out = f_out.data();
    args.adjacency = lattice->adjacency().data();
    args.node_type = types.data();
    args.n = lattice->size();
    args.omega = 1.1;
    args.force_z = 1e-6;
    args.inlet_velocity = 0.01;
    args.outlet_density = 1.0;
  }
};

void BM_StreamCollideFused(benchmark::State& state) {
  KernelFixture fx(geom::CylinderEnds::kPeriodic);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_collide_point(fx.args, i);
    benchmark::DoNotOptimize(fx.f_out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.args.n);
  state.SetBytesProcessed(state.iterations() * fx.args.n * 2 * 19 * 8);
}
BENCHMARK(BM_StreamCollideFused);

void BM_StreamThenCollideTwoPass(benchmark::State& state) {
  KernelFixture fx(geom::CylinderEnds::kPeriodic);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_point(fx.args, i);
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::collide_point(fx.args, i);
    benchmark::DoNotOptimize(fx.f_out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.args.n);
}
BENCHMARK(BM_StreamThenCollideTwoPass);

void BM_StreamCollideSoA(benchmark::State& state) {
  KernelFixture fx(geom::CylinderEnds::kPeriodic);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_collide_point(fx.args, i);
    benchmark::DoNotOptimize(fx.f_out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.args.n);
}
BENCHMARK(BM_StreamCollideSoA);

void BM_StreamCollideAoS(benchmark::State& state) {
  KernelFixture fx(geom::CylinderEnds::kPeriodic);
  // Re-pack the initial state into AoS order.
  const auto n = static_cast<std::size_t>(fx.args.n);
  std::vector<double> aos_in(fx.f_in.size()), aos_out(fx.f_out.size());
  for (std::size_t i = 0; i < n; ++i)
    for (int q = 0; q < lbm::kQ; ++q)
      aos_in[i * lbm::kQ + static_cast<std::size_t>(q)] =
          fx.f_in[static_cast<std::size_t>(q) * n + i];
  fx.args.f_in = aos_in.data();
  fx.args.f_out = aos_out.data();
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_collide_point_aos(fx.args, i);
    benchmark::DoNotOptimize(aos_out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.args.n);
}
BENCHMARK(BM_StreamCollideAoS);

void BM_StreamCollideWithZouHeCaps(benchmark::State& state) {
  KernelFixture fx(geom::CylinderEnds::kInletOutlet);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_collide_point(fx.args, i);
    benchmark::DoNotOptimize(fx.f_out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.args.n);
}
BENCHMARK(BM_StreamCollideWithZouHeCaps);

void BM_FullSolverStep(benchmark::State& state) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 6.0;
  spec.axial_per_scale = 24.0;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
  lbm::SolverOptions options;
  options.tau = 0.9;
  options.inlet_velocity = 0.01;
  lbm::Solver solver(lattice, options);
  for (auto _ : state) solver.step();
  state.SetItemsProcessed(state.iterations() * solver.size());
}
BENCHMARK(BM_FullSolverStep);

}  // namespace

BENCHMARK_MAIN();
