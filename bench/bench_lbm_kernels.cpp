// Google-benchmark microbenchmarks of the LBM kernels on the host engine:
// the fused stream-collide versus the two-pass pipeline (ablation), the
// SoA versus AoS storage layout (ablation), the boundary-condition cost
// on inlet/outlet-capped geometry, and the pull versus AA (in-place)
// propagation patterns.
//
// After the microbenchmarks the binary prints a pull-vs-AA MFLUPS table
// on a memory-bound cylinder (distribution arrays far larger than cache,
// where the AA pattern's single array pass per step — 152 B/point against
// pull's 304 — should convert into wall-clock).  The table follows the
// bench_common emit() convention (aligned text, "-- csv --" block, CSV
// artifact under HEMO_BENCH_CSV_DIR) but the binary stays standalone:
// it links only hemo_lbm + hemo_geom, not the campaign runtime.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "base/table.hpp"
#include "geom/cylinder.hpp"
#include "lbm/kernels.hpp"
#include "lbm/propagation.hpp"
#include "lbm/solver.hpp"

namespace {

using namespace hemo;

struct KernelFixture {
  std::shared_ptr<lbm::SparseLattice> lattice;
  std::vector<double> f_in, f_out;
  std::vector<std::uint8_t> types;
  lbm::KernelArgs args;

  explicit KernelFixture(geom::CylinderEnds ends, double radius = 8.0,
                         double length = 24.0) {
    geom::CylinderSpec spec;
    spec.scale = 1.0;
    spec.radius_per_scale = radius;
    spec.axial_per_scale = length;
    lattice = geom::make_cylinder_lattice(spec, ends);
    const auto n = static_cast<std::size_t>(lattice->size());
    f_in.resize(static_cast<std::size_t>(lbm::kQ) * n);
    f_out.resize(f_in.size());
    types.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      types[i] = static_cast<std::uint8_t>(
          lattice->node_type(static_cast<PointIndex>(i)));
    for (int q = 0; q < lbm::kQ; ++q)
      std::fill_n(f_in.begin() + static_cast<std::ptrdiff_t>(q) *
                                     static_cast<std::ptrdiff_t>(n),
                  n, lbm::equilibrium(q, 1.0, 0.0, 0.0, 0.01));

    args.f_in = f_in.data();
    args.f_out = f_out.data();
    args.adjacency = lattice->adjacency().data();
    args.node_type = types.data();
    args.n = lattice->size();
    args.omega = 1.1;
    args.force_z = 1e-6;
    args.inlet_velocity = 0.01;
    args.outlet_density = 1.0;
  }
};

void BM_StreamCollideFused(benchmark::State& state) {
  KernelFixture fx(geom::CylinderEnds::kPeriodic);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_collide_point(fx.args, i);
    benchmark::DoNotOptimize(fx.f_out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.args.n);
  state.SetBytesProcessed(state.iterations() * fx.args.n * 2 * 19 * 8);
}
BENCHMARK(BM_StreamCollideFused);

void BM_StreamThenCollideTwoPass(benchmark::State& state) {
  KernelFixture fx(geom::CylinderEnds::kPeriodic);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_point(fx.args, i);
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::collide_point(fx.args, i);
    benchmark::DoNotOptimize(fx.f_out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.args.n);
}
BENCHMARK(BM_StreamThenCollideTwoPass);

void BM_StreamCollideSoA(benchmark::State& state) {
  KernelFixture fx(geom::CylinderEnds::kPeriodic);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_collide_point(fx.args, i);
    benchmark::DoNotOptimize(fx.f_out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.args.n);
}
BENCHMARK(BM_StreamCollideSoA);

void BM_StreamCollideAoS(benchmark::State& state) {
  KernelFixture fx(geom::CylinderEnds::kPeriodic);
  // Re-pack the initial state into AoS order.
  const auto n = static_cast<std::size_t>(fx.args.n);
  std::vector<double> aos_in(fx.f_in.size()), aos_out(fx.f_out.size());
  for (std::size_t i = 0; i < n; ++i)
    for (int q = 0; q < lbm::kQ; ++q)
      aos_in[i * lbm::kQ + static_cast<std::size_t>(q)] =
          fx.f_in[static_cast<std::size_t>(q) * n + i];
  fx.args.f_in = aos_in.data();
  fx.args.f_out = aos_out.data();
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_collide_point_aos(fx.args, i);
    benchmark::DoNotOptimize(aos_out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.args.n);
}
BENCHMARK(BM_StreamCollideAoS);

void BM_StreamCollideAAInPlace(benchmark::State& state) {
  // One iteration = one even + one odd step over the single array (the AA
  // update is only meaningful as the two-step pair).
  KernelFixture fx(geom::CylinderEnds::kPeriodic);
  fx.args.f = fx.f_in.data();
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_collide_point_aa_even(fx.args, i);
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_collide_point_aa_odd(fx.args, i);
    benchmark::DoNotOptimize(fx.f_in.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * fx.args.n);
  state.SetBytesProcessed(state.iterations() * 2 * fx.args.n * 19 * 8);
}
BENCHMARK(BM_StreamCollideAAInPlace);

void BM_StreamCollideWithZouHeCaps(benchmark::State& state) {
  KernelFixture fx(geom::CylinderEnds::kInletOutlet);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < fx.args.n; ++i)
      lbm::stream_collide_point(fx.args, i);
    benchmark::DoNotOptimize(fx.f_out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.args.n);
}
BENCHMARK(BM_StreamCollideWithZouHeCaps);

void BM_FullSolverStep(benchmark::State& state) {
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 6.0;
  spec.axial_per_scale = 24.0;
  auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
  lbm::SolverOptions options;
  options.tau = 0.9;
  options.inlet_velocity = 0.01;
  lbm::Solver solver(lattice, options);
  for (auto _ : state) solver.step();
  state.SetItemsProcessed(state.iterations() * solver.size());
}
BENCHMARK(BM_FullSolverStep);

// ---------------------------------------------------------------------------
// Pull-vs-AA MFLUPS table on a memory-bound geometry.
// ---------------------------------------------------------------------------

struct MflupsResult {
  std::int64_t steps = 0;
  double seconds = 0.0;
  double mflups = 0.0;
};

MflupsResult solver_mflups(
    const std::shared_ptr<const lbm::SparseLattice>& lattice,
    lbm::Propagation pattern) {
  lbm::SolverOptions options;
  options.tau = 0.9;
  options.body_force = {0.0, 0.0, 1e-6};
  options.propagation = pattern;
  lbm::Solver solver(lattice, options);
  for (int s = 0; s < 4; ++s) solver.step();  // warm-up

  const auto run = [&](std::int64_t steps) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t s = 0; s < steps; ++s) solver.step();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  // Pilot run sizes the measurement to ~0.4 s of wall clock.
  const double pilot = run(5) / 5.0;
  MflupsResult r;
  r.steps = std::max<std::int64_t>(
      20, std::min<std::int64_t>(400, static_cast<std::int64_t>(0.4 / pilot)));
  r.seconds = run(r.steps);
  r.mflups = static_cast<double>(solver.size()) *
             static_cast<double>(r.steps) / r.seconds / 1e6;
  return r;
}

/// bench_common emit() convention (aligned text + "-- csv --" block +
/// HEMO_BENCH_CSV_DIR artifact) without linking the campaign runtime.
/// The title doubles as the artifact stem, so keep it filesystem-safe.
void emit_table(const std::string& title, const Table& table) {
  std::cout << "== " << title << " ==\n";
  table.print_aligned(std::cout);
  std::cout << "-- csv --\n";
  table.print_csv(std::cout);
  std::cout << "\n";
  if (const char* dir = std::getenv("HEMO_BENCH_CSV_DIR")) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream out(std::filesystem::path(dir) / (title + ".csv"));
    if (out)
      table.print_csv(out);
    else
      std::cerr << "bench: cannot write CSV artifact under " << dir << "\n";
  }
}

void report_propagation_mflups() {
  // Large enough that the distribution storage (pull: ~2*19*8 B/point,
  // here tens of MB) cannot sit in cache: the patterns' byte counts, not
  // their instruction counts, should dominate.
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 24.0;
  spec.axial_per_scale = 128.0;
  const auto lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kPeriodic);

  Table table({"pattern", "points", "steps", "seconds", "mflups",
               "model_bytes_per_point", "speedup_vs_pull"});
  const MflupsResult pull =
      solver_mflups(lattice, lbm::Propagation::kPullSoA);
  const MflupsResult aa =
      solver_mflups(lattice, lbm::Propagation::kAAInPlace);
  for (const auto& [pattern, r] :
       {std::pair{lbm::Propagation::kPullSoA, pull},
        std::pair{lbm::Propagation::kAAInPlace, aa}}) {
    table.add_row({lbm::propagation_name(pattern),
                   std::to_string(lattice->size()), std::to_string(r.steps),
                   Table::num(r.seconds),
                   Table::num(r.mflups),
                   Table::num(lbm::propagation_bytes_per_point(pattern), 0),
                   Table::num(r.mflups / pull.mflups, 2)});
  }
  emit_table("lbm_propagation_mflups", table);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_propagation_mflups();
  return 0;
}
