// bench_sentinel: step-time overhead of the RS006 SDC sentinel on the
// distributed cylinder solver.  Every row runs the same resilient solve
// (snapshots armed, no faults injected) and differs only in the sentinel
// knobs, so "overhead_pct" isolates what the corruption detector itself
// costs on top of the recovery substrate it rides on:
//
//   off            resilience enabled, sentinel disabled (the baseline)
//   digests@K      per-tile digest record every step, verify every K steps
//   tiles=T        digest verify with T-point tiles (localization grain)
//   reexec=N       digests plus N sampled tiles re-executed twice per step
//                  through the shadow-buffer vote-compare
//
// The headline criterion: the default configuration (256-point tiles,
// verify every step, no re-execution) must stay within a few percent of
// the sentinel-off step time — detection has to be cheap enough to leave
// on.  Deeper verification (reexec) buys compute-fault coverage at a
// visibly higher price; the table is the trade-off curve.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "base/table.hpp"
#include "bench_common.hpp"
#include "decomp/partition.hpp"
#include "geom/cylinder.hpp"
#include "harvey/distributed_solver.hpp"
#include "resilience/policy.hpp"

namespace {

using namespace hemo;

constexpr int kRanks = 4;

struct Setup {
  std::shared_ptr<const lbm::SparseLattice> lattice;
  decomp::Partition partition;
  lbm::SolverOptions options;
};

Setup make_setup() {
  // Large enough that the per-rank state does not sit in cache: the
  // digest pass streams the same bytes the kernel does, so an in-cache
  // toy would understate its relative cost.
  geom::CylinderSpec spec;
  spec.scale = 1.0;
  spec.radius_per_scale = 12.0;
  spec.axial_per_scale = 64.0;
  Setup s;
  s.lattice =
      geom::make_cylinder_lattice(spec, geom::CylinderEnds::kInletOutlet);
  s.partition = decomp::slab_partition(*s.lattice, kRanks);
  s.options.tau = 0.9;
  s.options.inlet_velocity = 0.01;
  s.options.outlet_density = 1.0;
  return s;
}

struct Timing {
  std::int64_t steps = 0;
  double seconds = 0.0;
  double us_per_step = 0.0;
};

Timing time_config(const Setup& setup, const resilience::Options& res) {
  harvey::DistributedSolver solver(setup.lattice, setup.partition,
                                   setup.options);
  solver.enable_resilience(res);
  solver.run(4);  // warm-up: page in both buffers and the snapshot

  const auto run = [&](std::int64_t steps) {
    const auto t0 = std::chrono::steady_clock::now();
    solver.run(static_cast<int>(steps));
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  // Pilot run sizes the measurement to ~0.3 s of wall clock.
  const double pilot = run(4) / 4.0;
  Timing t;
  t.steps = std::max<std::int64_t>(
      16,
      std::min<std::int64_t>(200, static_cast<std::int64_t>(0.3 / pilot)));
  t.seconds = run(t.steps);
  t.us_per_step = t.seconds / static_cast<double>(t.steps) * 1e6;
  return t;
}

resilience::Options base_options() {
  resilience::Options o;
  o.recovery.checkpoint_interval = 8;
  return o;
}

struct Row {
  std::string label;
  resilience::Options options;
};

}  // namespace

int main() {
  const Setup setup = make_setup();

  std::vector<Row> rows;
  rows.push_back({"off", base_options()});
  for (const std::int64_t interval : {1, 2, 4}) {
    Row r{"digests@" + std::to_string(interval), base_options()};
    r.options.sentinel.enabled = true;
    r.options.sentinel.check_interval = interval;
    rows.push_back(r);
  }
  for (const std::int64_t tiles : {64, 1024}) {
    Row r{"tiles=" + std::to_string(tiles), base_options()};
    r.options.sentinel.enabled = true;
    r.options.sentinel.tile_points = tiles;
    rows.push_back(r);
  }
  for (const std::int64_t sample : {2, 8}) {
    Row r{"reexec=" + std::to_string(sample), base_options()};
    r.options.sentinel.enabled = true;
    r.options.sentinel.reexec_sample = sample;
    rows.push_back(r);
  }

  Table table({"config", "tile_points", "check_interval", "reexec_sample",
               "points", "steps", "seconds", "us_per_step", "overhead_pct"});
  double baseline_us = 0.0;
  for (const Row& row : rows) {
    const Timing t = time_config(setup, row.options);
    if (row.label == "off") baseline_us = t.us_per_step;
    const double overhead =
        baseline_us > 0.0 ? (t.us_per_step / baseline_us - 1.0) * 100.0
                          : 0.0;
    const resilience::SentinelPolicy& sp = row.options.sentinel;
    table.add_row({row.label,
                   sp.enabled ? std::to_string(sp.tile_points) : "-",
                   sp.enabled ? std::to_string(sp.check_interval) : "-",
                   sp.enabled ? std::to_string(sp.reexec_sample) : "-",
                   std::to_string(setup.lattice->size()),
                   std::to_string(t.steps), Table::num(t.seconds),
                   Table::num(t.us_per_step, 1), Table::num(overhead, 1)});
  }
  hemo::bench::emit("sentinel_overhead", table);
  return 0;
}
