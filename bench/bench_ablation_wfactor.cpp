// Ablation: the performance model's face-count correction (Eq. 4,
// w = 2 min(log2 n, 6)).  Compares three surface estimates per device
// count against the surface actually measured from the bisection
// decomposition of the cylinder:
//
//   none       all twelve face-directions charged at every count
//   eq4        the paper's correction
//   measured   crossing links counted from the real halo plan
//
// The correction matters exactly where the paper applies it: at low
// device counts, where the idealized cube does not use all of its faces.

#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  sim::Workload& workload = bench::cylinder_workload();
  const sys::SystemSpec& spec = sys::system_spec(sys::SystemId::kPolaris);
  const perf::PerformanceModel model(spec);

  Table table({"Devices", "w (Eq. 4)", "SA none", "SA eq4",
               "SA measured", "eq4 / measured"});

  for (const int devices : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const double per_device =
        workload.target_points(1) / static_cast<double>(devices);
    const double w = model.face_correction(devices);
    const double sa_none = 12.0 * std::pow(per_device, 2.0 / 3.0);
    const double sa_eq4 = model.communication_surface(per_device, devices);

    // Measured: the largest per-rank crossing-link count from the real
    // decomposition, extrapolated to the target resolution.
    const sim::RankStats& stats = workload.stats(devices);
    std::vector<double> per_rank(static_cast<std::size_t>(devices), 0.0);
    for (const auto& m : stats.halos) {
      per_rank[static_cast<std::size_t>(m.src)] += m.values;
      per_rank[static_cast<std::size_t>(m.dst)] += m.values;
    }
    double max_measured = 0.0;
    for (const double v : per_rank)
      max_measured = std::max(max_measured, v * workload.halo_scale(1));
    // The model counts surface points; the plan counts crossing values
    // (~5 distributions per surface point in D3Q19).
    const double sa_measured = max_measured / 5.0;

    table.add_row({std::to_string(devices), Table::num(w, 0),
                   Table::num(sa_none, 0), Table::num(sa_eq4, 0),
                   Table::num(sa_measured, 0),
                   Table::num(sa_eq4 / sa_measured, 2)});
  }

  bench::emit("Ablation: Eq. 4 face correction vs measured halo surfaces "
              "(cylinder, base size)",
              table);
  return 0;
}
