// Table 3 reproduction: manual lines of code needed for each port,
// measured mechanically against the checked-in corpora:
//
//   DPCT:   diff(tool output, shipped syclx corpus)   -> the dim3 fixes
//   HIPify: diff(tool output, shipped hipx corpus)    -> zero by design
//   Kokkos: diff(cudax corpus, shipped kokkosx corpus) -> the manual port
//
// Absolute counts are smaller than the paper's (the corpus stands in for
// the much larger HARVEY code base); the ordering and the orders of
// magnitude are the reproduced result.

#include "bench_common.hpp"
#include "port/corpus.hpp"
#include "port/dpct.hpp"
#include "port/hipify.hpp"
#include "port/loc.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  port::LocDelta dpct_manual, hipify_manual, kokkos_manual;
  int corpus_sloc = 0;
  for (const std::string& name : port::corpus_files()) {
    const std::string cudax =
        port::read_corpus_file(port::CorpusDialect::kCudax, name);
    corpus_sloc += port::count_sloc(cudax);

    const auto dpct = port::dpct_translate(cudax, name);
    dpct_manual += port::loc_diff(
        dpct.output, port::read_corpus_file(port::CorpusDialect::kSyclx, name));

    const auto hip = port::hipify(cudax);
    hipify_manual += port::loc_diff(
        hip.output, port::read_corpus_file(port::CorpusDialect::kHipx, name));

    kokkos_manual += port::loc_diff(
        cudax, port::read_corpus_file(port::CorpusDialect::kKokkosx, name));
  }

  Table table({"Metric", "DPCT", "HIPify", "Kokkos"});
  table.add_row({"Lines added (measured)", std::to_string(dpct_manual.added),
                 std::to_string(hipify_manual.added),
                 std::to_string(kokkos_manual.added)});
  table.add_row({"Lines changed (measured)",
                 std::to_string(dpct_manual.changed),
                 std::to_string(hipify_manual.changed),
                 std::to_string(kokkos_manual.changed)});
  table.add_row({"Lines added (paper, full HARVEY)", "0", "0", "1876"});
  table.add_row({"Lines changed (paper, full HARVEY)", "27", "0", "452"});
  table.add_row({"Time scale (paper)", "weeks", "days", "months"});

  bench::emit("Table 3: manual code needed for ports (corpus: " +
                  std::to_string(corpus_sloc) + " SLOC over " +
                  std::to_string(port::corpus_files().size()) + " files)",
              table);
  return 0;
}
