// PingPong substrate: the link-timing measurement feeding Eq. 2 of the
// performance model (the paper adapted the Intel MPI PingPong benchmark).
// One-way message times over a size sweep for every system and link kind.

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  namespace bench = hemo::bench;

  Table table({"System", "Link", "Bytes", "Time (us)",
               "Effective GB/s"});

  const std::pair<sys::LinkKind, const char*> links[] = {
      {sys::LinkKind::kIntranode, "intranode"},
      {sys::LinkKind::kInternode, "internode"},
      {sys::LinkKind::kCpuGpu, "cpu-gpu"},
  };

  for (const sys::SystemId id : sys::kAllSystems) {
    const sys::SystemSpec& spec = sys::system_spec(id);
    for (const auto& [kind, name] : links) {
      for (std::int64_t bytes = 8; bytes <= (8 << 20); bytes *= 16) {
        const double t = sys::pingpong_time_s(spec, kind, bytes);
        table.add_row({spec.name, name, std::to_string(bytes),
                       Table::num(t * 1e6, 3),
                       Table::num(bytes / t / 1e9, 3)});
      }
    }
  }

  bench::emit("PingPong (simulated links): one-way message time", table);
  return 0;
}
