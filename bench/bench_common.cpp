#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

namespace hemo::bench {

sim::Workload& cylinder_workload() {
  static sim::Workload w =
      sim::Workload::cylinder(sim::DecompositionKind::kBisection);
  return w;
}

sim::Workload& aorta_workload() {
  static sim::Workload w = sim::Workload::aorta();
  return w;
}

std::vector<SeriesPoint> run_series(sys::SystemId system, hal::Model model,
                                    sim::App app, sim::Workload& workload) {
  const sim::ClusterSimulator cs(system, model, app);
  std::vector<SeriesPoint> series;
  for (const sys::SchedulePoint& sp :
       sys::piecewise_schedule(sys::system_spec(system).max_devices)) {
    SeriesPoint point;
    point.schedule = sp;
    point.sim = cs.simulate(workload, sp.devices, sp.size_multiplier);
    point.prediction = cs.predict(workload, sp.devices, sp.size_multiplier);
    series.push_back(point);
  }
  return series;
}

std::string device_label(const sys::SchedulePoint& sp) {
  std::string label = std::to_string(sp.devices);
  // Mark the second occurrence of the boundary counts (16, 128): the
  // weak-scaling jump points of the piecewise schedule.
  if ((sp.devices == 16 && sp.size_multiplier == 2) ||
      (sp.devices == 128 && sp.size_multiplier == 4))
    label += "*";
  return label;
}

void emit(const std::string& title, const Table& table) {
  std::cout << "== " << title << " ==\n";
  table.print_aligned(std::cout);
  std::cout << "-- csv --\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

void emit_ascii_plot(const std::string& title,
                     const std::vector<std::string>& x_labels,
                     const std::vector<PlotSeries>& series, int height) {
  if (series.empty() || x_labels.empty() || height < 4) return;

  double lo = 1e300, hi = -1e300;
  for (const PlotSeries& s : series)
    for (const double v : s.values) {
      if (v <= 0.0) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  if (hi <= lo) hi = lo * 10.0;
  const double log_lo = std::log10(lo);
  const double log_hi = std::log10(hi);

  // Column layout: each x position gets a fixed-width slot.
  const int slot = 6;
  const int width = static_cast<int>(x_labels.size()) * slot;
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));

  for (const PlotSeries& s : series) {
    for (std::size_t k = 0; k < s.values.size() && k < x_labels.size(); ++k) {
      const double v = s.values[k];
      if (v <= 0.0) continue;
      const double t = (std::log10(v) - log_lo) / (log_hi - log_lo);
      int row = height - 1 -
                static_cast<int>(std::lround(t * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      const int col = static_cast<int>(k) * slot + slot / 2;
      char& cell = canvas[static_cast<std::size_t>(row)]
                         [static_cast<std::size_t>(col)];
      cell = (cell == ' ' || cell == s.glyph) ? s.glyph : '#';  // overlap
    }
  }

  std::cout << ".. " << title << " (log y: " << Table::num(lo, 0) << " .. "
            << Table::num(hi, 0) << ") ..\n";
  for (const std::string& line : canvas) std::cout << "|" << line << "\n";
  std::cout << "+" << std::string(static_cast<std::size_t>(width), '-')
            << "\n ";
  for (const std::string& label : x_labels) {
    std::string cell = label.substr(0, static_cast<std::size_t>(slot - 1));
    cell.resize(static_cast<std::size_t>(slot), ' ');
    std::cout << cell;
  }
  std::cout << "\n legend:";
  for (const PlotSeries& s : series)
    std::cout << "  " << s.glyph << " = " << s.name;
  std::cout << "  # = overlap\n\n";
}

}  // namespace hemo::bench
