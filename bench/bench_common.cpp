#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "base/contracts.hpp"
#include "rt/job.hpp"

namespace hemo::bench {

rt::ArtifactCache& artifact_cache() {
  static rt::ArtifactCache cache(256);
  return cache;
}

int rt_workers() {
  if (const char* env = std::getenv("HEMO_RT_WORKERS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1)
      return static_cast<int>(std::min<long>(parsed, 64));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 64u));
}

sim::Workload& cylinder_workload() {
  static std::shared_ptr<sim::Workload> w = rt::shared_workload(
      artifact_cache(), rt::WorkloadKind::kCylinderBisection);
  return *w;
}

sim::Workload& aorta_workload() {
  static std::shared_ptr<sim::Workload> w =
      rt::shared_workload(artifact_cache(), rt::WorkloadKind::kAorta);
  return *w;
}

namespace {

/// Converts campaign results to bench series; every point must have
/// priced successfully (the tables have no way to render a hole).
std::vector<std::vector<SeriesPoint>> to_series(
    const rt::CampaignResult& result) {
  std::vector<std::vector<SeriesPoint>> out;
  out.reserve(result.series.size());
  for (const rt::SeriesResult& series : result.series) {
    std::vector<SeriesPoint> points;
    points.reserve(series.points.size());
    for (const rt::PointResult& p : series.points) {
      if (!p.ok()) {
        std::cerr << "bench: " << rt::describe(*p.failure) << "\n";
        std::exit(1);
      }
      points.push_back(SeriesPoint{p.schedule, p.sim, p.prediction});
    }
    out.push_back(std::move(points));
  }
  return out;
}

}  // namespace

std::vector<std::vector<SeriesPoint>> run_matrix(
    const std::vector<rt::SeriesSpec>& specs) {
  rt::CampaignSpec campaign;
  campaign.name = "bench-matrix";
  campaign.series = specs;
  campaign.workers = rt_workers();
  return to_series(rt::run_campaign(campaign, artifact_cache()));
}

std::vector<SeriesPoint> run_series(sys::SystemId system, hal::Model model,
                                    sim::App app, sim::Workload& workload) {
  rt::CampaignSpec campaign;
  campaign.name = "bench-series";
  campaign.series = {rt::SeriesSpec{system, model, app,
                                    rt::WorkloadKind::kCylinderBisection}};
  campaign.workers = rt_workers();
  // The caller owns the workload (one of the shared statics above, or an
  // ablation variant); hand the runtime a non-owning view of it.
  campaign.workload_provider =
      [&workload](const rt::SeriesSpec&) -> std::shared_ptr<sim::Workload> {
    return std::shared_ptr<sim::Workload>(&workload, [](sim::Workload*) {});
  };
  return to_series(rt::run_campaign(campaign, artifact_cache())).front();
}

std::string device_label(const sys::SchedulePoint& sp) {
  std::string label = std::to_string(sp.devices);
  // Mark the second occurrence of the boundary counts (16, 128): the
  // weak-scaling jump points of the piecewise schedule.
  if ((sp.devices == 16 && sp.size_multiplier == 2) ||
      (sp.devices == 128 && sp.size_multiplier == 4))
    label += "*";
  return label;
}

namespace {

/// Filesystem-safe spelling of a table title: runs of anything outside
/// [A-Za-z0-9._-] collapse to one underscore.
std::string sanitize_filename(const std::string& title) {
  std::string name;
  for (const char c : title) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    if (safe)
      name += c;
    else if (name.empty() || name.back() != '_')
      name += '_';
  }
  while (!name.empty() && name.back() == '_') name.pop_back();
  return name.empty() ? "table" : name;
}

void write_csv_artifact(const char* dir, const std::string& title,
                        const Table& table) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path path =
      std::filesystem::path(dir) / (sanitize_filename(title) + ".csv");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench: cannot write CSV artifact " << path << "\n";
    return;
  }
  table.print_csv(out);
}

}  // namespace

void emit(const std::string& title, const Table& table) {
  std::cout << "== " << title << " ==\n";
  table.print_aligned(std::cout);
  std::cout << "-- csv --\n";
  table.print_csv(std::cout);
  std::cout << "\n";
  if (const char* dir = std::getenv("HEMO_BENCH_CSV_DIR"))
    write_csv_artifact(dir, title, table);
}

void emit_ascii_plot(const std::string& title,
                     const std::vector<std::string>& x_labels,
                     const std::vector<PlotSeries>& series, int height) {
  if (series.empty() || x_labels.empty() || height < 4) return;

  double lo = 1e300, hi = -1e300;
  for (const PlotSeries& s : series)
    for (const double v : s.values) {
      if (v <= 0.0) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  if (hi <= lo) hi = lo * 10.0;
  const double log_lo = std::log10(lo);
  const double log_hi = std::log10(hi);

  // Column layout: each x position gets a fixed-width slot.
  const int slot = 6;
  const int width = static_cast<int>(x_labels.size()) * slot;
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));

  for (const PlotSeries& s : series) {
    for (std::size_t k = 0; k < s.values.size() && k < x_labels.size(); ++k) {
      const double v = s.values[k];
      if (v <= 0.0) continue;
      const double t = (std::log10(v) - log_lo) / (log_hi - log_lo);
      int row = height - 1 -
                static_cast<int>(std::lround(t * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      const int col = static_cast<int>(k) * slot + slot / 2;
      char& cell = canvas[static_cast<std::size_t>(row)]
                         [static_cast<std::size_t>(col)];
      cell = (cell == ' ' || cell == s.glyph) ? s.glyph : '#';  // overlap
    }
  }

  std::cout << ".. " << title << " (log y: " << Table::num(lo, 0) << " .. "
            << Table::num(hi, 0) << ") ..\n";
  for (const std::string& line : canvas) std::cout << "|" << line << "\n";
  std::cout << "+" << std::string(static_cast<std::size_t>(width), '-')
            << "\n ";
  for (const std::string& label : x_labels) {
    std::string cell = label.substr(0, static_cast<std::size_t>(slot - 1));
    cell.resize(static_cast<std::size_t>(slot), ' ');
    std::cout << cell;
  }
  std::cout << "\n legend:";
  for (const PlotSeries& s : series)
    std::cout << "  " << s.glyph << " = " << s.name;
  std::cout << "  # = overlap\n\n";
}

}  // namespace hemo::bench
